#include "netlist/bench_io.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "netlist/builder.hpp"
#include "netlist/io_common.hpp"
#include "support/atomic_io.hpp"
#include "support/check.hpp"
#include "support/strings.hpp"

namespace serelin {

namespace {

/// Parses "KEYWORD(arg)" or "KEYWORD(a, b, c)"; returns {keyword, args},
/// or nullopt after reporting a bench-syntax diagnostic.
std::optional<std::pair<std::string_view, std::vector<std::string_view>>>
parse_call(std::string_view text, int line_no, DiagnosticSink& sink) {
  const std::size_t open = text.find('(');
  const std::size_t close = text.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    sink.error(DiagCode::kBenchSyntax, line_no, "expected KEYWORD(args)");
    return std::nullopt;
  }
  const std::string_view keyword = trim(text.substr(0, open));
  const std::string_view inner = text.substr(open + 1, close - open - 1);
  std::vector<std::string_view> args;
  for (std::string_view piece : split(inner, ","))
    args.push_back(trim(piece));
  if (keyword.empty()) {
    sink.error(DiagCode::kBenchSyntax, line_no,
               "missing keyword before '('");
    return std::nullopt;
  }
  return std::make_pair(keyword, std::move(args));
}

/// One line of the grammar; defects are reported and the line skipped.
void parse_line(std::string_view line, int line_no, NetlistBuilder& builder,
                DiagnosticSink& sink) {
  const std::size_t eq = line.find('=');
  if (eq == std::string_view::npos) {
    // Directive form: INPUT(sig) or OUTPUT(sig).
    const auto call = parse_call(line, line_no, sink);
    if (!call) return;
    const auto& [keyword, args] = *call;
    const std::string up = to_upper(keyword);
    if (up != "INPUT" && up != "OUTPUT") {
      sink.error(DiagCode::kBenchUnknownDirective, line_no,
                 "unknown directive '" + up + "'");
      return;
    }
    if (args.size() != 1 || args[0].empty()) {
      sink.error(DiagCode::kBenchArity, line_no,
                 up + " takes exactly one signal");
      return;
    }
    if (up == "INPUT")
      builder.input(std::string(args[0])).at_line(line_no);
    else
      builder.output(std::string(args[0]));
    return;
  }

  // Assignment form: sig = GATE(a, b, ...).
  const std::string out_name{trim(line.substr(0, eq))};
  if (out_name.empty()) {
    sink.error(DiagCode::kBenchSyntax, line_no,
               "missing signal name before '='");
    return;
  }
  const auto call = parse_call(line.substr(eq + 1), line_no, sink);
  if (!call) return;
  const auto& [keyword, args] = *call;
  const std::optional<CellType> type = try_parse_cell_type(keyword);
  if (!type) {
    sink.error(DiagCode::kBenchUnknownGate, line_no,
               "unknown gate keyword '" + std::string(keyword) + "'");
    return;
  }
  if (*type == CellType::kInput) {
    sink.error(DiagCode::kBenchSyntax, line_no,
               "INPUT cannot appear on the right of '='");
    return;
  }
  std::vector<std::string> fanins;
  fanins.reserve(args.size());
  for (std::string_view a : args) {
    if (a.empty()) {
      sink.error(DiagCode::kBenchArity, line_no, "empty fanin name");
      return;
    }
    fanins.emplace_back(a);
  }
  if (*type == CellType::kDff) {
    if (fanins.size() != 1) {
      sink.error(DiagCode::kBenchArity, line_no,
                 "DFF takes exactly one fanin");
      return;
    }
    builder.dff(out_name, fanins[0]).at_line(line_no);
  } else if (*type == CellType::kConst0 || *type == CellType::kConst1) {
    if (!fanins.empty()) {
      sink.error(DiagCode::kBenchArity, line_no,
                 "constants take no fanins");
      return;
    }
    builder.constant(out_name, *type == CellType::kConst1).at_line(line_no);
  } else {
    const int fi = static_cast<int>(fanins.size());
    if (fi < min_fanins(*type) || fi > max_fanins(*type)) {
      sink.error(DiagCode::kBenchArity, line_no,
                 std::string(cell_type_name(*type)) + " cannot take " +
                     std::to_string(fi) + " fanins");
      return;
    }
    builder.gate(out_name, *type, std::move(fanins)).at_line(line_no);
  }
}

}  // namespace

Netlist read_bench(std::istream& in, std::string circuit_name,
                   DiagnosticSink& sink) {
  NetlistBuilder builder(circuit_name);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = raw;
    if (!line.empty() && line.back() == '\r')
      line = line.substr(0, line.size() - 1);
    // Strip comments (both '#' and the occasional '//').
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    if (const auto slashes = line.find("//"); slashes != std::string_view::npos)
      line = line.substr(0, slashes);
    line = trim(line);
    if (line.empty()) continue;
    // Outside comments the format is pure printable ASCII; anything else
    // is corruption (a truncated download, binary data, encoding damage).
    if (!ioutil::ascii_clean(line)) {
      sink.error(DiagCode::kBadByte, line_no,
                 "non-ASCII or control bytes; line skipped");
      continue;
    }
    parse_line(line, line_no, builder, sink);
  }
  ioutil::check_stream(in, sink);
  return builder.build(sink);
}

Netlist read_bench(std::istream& in, std::string circuit_name) {
  DiagnosticSink sink;
  Netlist nl = read_bench(in, std::move(circuit_name), sink);
  sink.throw_if_errors(".bench parse failed");
  return nl;
}

Netlist read_bench_file(const std::string& path, DiagnosticSink& sink) {
  std::ifstream in;
  if (!ioutil::open_text_input(path, in, sink))
    return NetlistBuilder(ioutil::path_stem(path)).build(sink);
  return read_bench(in, ioutil::path_stem(path), sink);
}

Netlist read_bench_file(const std::string& path) {
  DiagnosticSink sink;
  Netlist nl = read_bench_file(path, sink);
  sink.throw_if_errors("cannot parse .bench file");
  return nl;
}

void write_bench(std::ostream& out, const Netlist& nl) {
  SERELIN_REQUIRE(nl.finalized(), "write_bench needs a finalized netlist");
  out << "# " << nl.name() << " — written by serelin\n";
  for (NodeId id : nl.inputs()) out << "INPUT(" << nl.node(id).name << ")\n";
  for (NodeId id : nl.outputs()) out << "OUTPUT(" << nl.node(id).name << ")\n";
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == CellType::kInput) continue;
    out << n.name << " = " << cell_type_name(n.type) << "(";
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      if (i) out << ", ";
      out << nl.node(n.fanins[i]).name;
    }
    out << ")\n";
  }
}

void write_bench_file(const std::string& path, const Netlist& nl) {
  std::ostringstream out;
  write_bench(out, nl);
  atomic_write_file(path, out.str());
}

}  // namespace serelin
