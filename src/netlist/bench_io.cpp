#include "netlist/bench_io.hpp"

#include <fstream>
#include <sstream>

#include "netlist/builder.hpp"
#include "support/check.hpp"
#include "support/strings.hpp"

namespace serelin {

namespace {

/// Parses "KEYWORD(arg)" or "KEYWORD(a, b, c)"; returns {keyword, args}.
std::pair<std::string_view, std::vector<std::string_view>> parse_call(
    std::string_view text, int line_no) {
  const std::size_t open = text.find('(');
  const std::size_t close = text.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open)
    throw ParseError(".bench line " + std::to_string(line_no) +
                     ": expected KEYWORD(args)");
  const std::string_view keyword = trim(text.substr(0, open));
  const std::string_view inner = text.substr(open + 1, close - open - 1);
  std::vector<std::string_view> args;
  for (std::string_view piece : split(inner, ","))
    args.push_back(trim(piece));
  if (keyword.empty())
    throw ParseError(".bench line " + std::to_string(line_no) +
                     ": missing keyword before '('");
  return {keyword, args};
}

}  // namespace

Netlist read_bench(std::istream& in, std::string circuit_name) {
  NetlistBuilder builder(circuit_name);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = raw;
    // Strip comments (both '#' and the occasional '//').
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    if (const auto slashes = line.find("//"); slashes != std::string_view::npos)
      line = line.substr(0, slashes);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      // Directive form: INPUT(sig) or OUTPUT(sig).
      auto [keyword, args] = parse_call(line, line_no);
      const std::string up = to_upper(keyword);
      if (args.size() != 1)
        throw ParseError(".bench line " + std::to_string(line_no) + ": " + up +
                         " takes exactly one signal");
      if (up == "INPUT") {
        builder.input(std::string(args[0]));
      } else if (up == "OUTPUT") {
        builder.output(std::string(args[0]));
      } else {
        throw ParseError(".bench line " + std::to_string(line_no) +
                         ": unknown directive '" + up + "'");
      }
      continue;
    }

    // Assignment form: sig = GATE(a, b, ...).
    const std::string out_name{trim(line.substr(0, eq))};
    if (out_name.empty())
      throw ParseError(".bench line " + std::to_string(line_no) +
                       ": missing signal name before '='");
    auto [keyword, args] = parse_call(line.substr(eq + 1), line_no);
    const CellType type = parse_cell_type(keyword);
    if (type == CellType::kInput)
      throw ParseError(".bench line " + std::to_string(line_no) +
                       ": INPUT cannot appear on the right of '='");
    std::vector<std::string> fanins;
    fanins.reserve(args.size());
    for (std::string_view a : args) {
      if (a.empty())
        throw ParseError(".bench line " + std::to_string(line_no) +
                         ": empty fanin name");
      fanins.emplace_back(a);
    }
    if (type == CellType::kDff) {
      if (fanins.size() != 1)
        throw ParseError(".bench line " + std::to_string(line_no) +
                         ": DFF takes exactly one fanin");
      builder.dff(out_name, fanins[0]);
    } else if (type == CellType::kConst0 || type == CellType::kConst1) {
      if (!fanins.empty())
        throw ParseError(".bench line " + std::to_string(line_no) +
                         ": constants take no fanins");
      builder.constant(out_name, type == CellType::kConst1);
    } else {
      builder.gate(out_name, type, std::move(fanins));
    }
  }
  return builder.build();
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open .bench file: " + path);
  std::string stem = path;
  if (const auto slash = stem.find_last_of('/'); slash != std::string::npos)
    stem = stem.substr(slash + 1);
  if (const auto dot = stem.find_last_of('.'); dot != std::string::npos)
    stem = stem.substr(0, dot);
  return read_bench(in, stem);
}

void write_bench(std::ostream& out, const Netlist& nl) {
  SERELIN_REQUIRE(nl.finalized(), "write_bench needs a finalized netlist");
  out << "# " << nl.name() << " — written by serelin\n";
  for (NodeId id : nl.inputs()) out << "INPUT(" << nl.node(id).name << ")\n";
  for (NodeId id : nl.outputs()) out << "OUTPUT(" << nl.node(id).name << ")\n";
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == CellType::kInput) continue;
    out << n.name << " = " << cell_type_name(n.type) << "(";
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      if (i) out << ", ";
      out << nl.node(n.fanins[i]).name;
    }
    out << ")\n";
  }
}

void write_bench_file(const std::string& path, const Netlist& nl) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot write .bench file: " + path);
  write_bench(out, nl);
}

}  // namespace serelin
