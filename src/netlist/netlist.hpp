// Sequential gate-level netlist.
//
// A Netlist is a flat vector of nodes. Each node is a named signal produced
// by one cell (primary input, D flip-flop, constant, or combinational gate)
// and consumed by its fanout nodes. Primary outputs are a separate list of
// node ids (a node may simultaneously drive a PO and internal fanouts, as in
// .bench).
//
// Construction protocol: add nodes (fanins may reference nodes added later
// only via the two-phase builder in builder.hpp; direct add_node requires
// already-existing fanins, except for kDff whose fanin may be patched with
// set_dff_input to close feedback loops), then call finalize() exactly once.
// finalize() derives fanout lists, checks structural legality (arity, unique
// names, every combinational cycle passes through a flip-flop) and computes
// a topological order of the one-cycle combinational network.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/cell.hpp"
#include "netlist/cell_library.hpp"

namespace serelin {

using NodeId = std::uint32_t;
inline constexpr NodeId kNullNode = static_cast<NodeId>(-1);

struct Node {
  std::string name;
  CellType type = CellType::kBuf;
  std::vector<NodeId> fanins;
  std::vector<NodeId> fanouts;  // derived by finalize()
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  /// Circuit name (e.g. the benchmark name).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a node. All fanins except a DFF's D pin must already exist; a DFF
  /// may be created with fanin kNullNode and patched later via
  /// set_dff_input() (feedback loops make forward references unavoidable).
  /// Returns the new node's id.
  NodeId add_node(std::string name, CellType type, std::vector<NodeId> fanins);

  /// Patches the D input of flip-flop `dff`. Only legal before finalize().
  void set_dff_input(NodeId dff, NodeId driver);

  /// Declares `node` to drive a primary output. Idempotent.
  void mark_output(NodeId node);

  /// Freezes the netlist: derives fanouts, validates structure, computes the
  /// combinational topological order. Throws on malformed netlists.
  void finalize();

  bool finalized() const { return finalized_; }

  // ---- Accessors (most require finalize()) --------------------------------

  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  const std::vector<NodeId>& dffs() const { return dffs_; }

  /// All combinational gate ids (types kBuf..kXnor), in topological order
  /// of the one-cycle network (sources excluded).
  const std::vector<NodeId>& gate_order() const { return gate_order_; }

  /// Number of combinational gates.
  std::size_t gate_count() const { return gate_order_.size(); }

  /// Number of flip-flops (#FF in the paper's Table I).
  std::size_t dff_count() const { return dffs_.size(); }

  /// Looks a node up by name; returns kNullNode if absent.
  NodeId find(std::string_view name) const;

  /// True if `node` is declared as a primary output.
  bool is_output(NodeId node) const;

  /// Total area according to `lib` (combinational + sequential).
  double total_area(const CellLibrary& lib) const;

  /// Iterates node ids [0, node_count)).
  std::vector<NodeId> all_nodes() const;

 private:
  void check_arities() const;
  void build_fanouts();
  void compute_gate_order();

  std::string name_;
  std::vector<Node> nodes_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> dffs_;
  std::vector<NodeId> gate_order_;
  std::vector<bool> is_output_;
  bool finalized_ = false;
};

}  // namespace serelin
