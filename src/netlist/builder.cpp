#include "netlist/builder.hpp"

#include <unordered_map>

#include "support/check.hpp"

namespace serelin {

NetlistBuilder::NetlistBuilder(std::string circuit_name)
    : circuit_name_(std::move(circuit_name)) {}

NetlistBuilder& NetlistBuilder::input(std::string name) {
  decls_.push_back({std::move(name), CellType::kInput, {}});
  return *this;
}

NetlistBuilder& NetlistBuilder::output(std::string name) {
  output_names_.push_back(std::move(name));
  return *this;
}

NetlistBuilder& NetlistBuilder::dff(std::string q, std::string d) {
  decls_.push_back({std::move(q), CellType::kDff, {std::move(d)}});
  return *this;
}

NetlistBuilder& NetlistBuilder::gate(std::string out, CellType type,
                                     std::vector<std::string> fanins) {
  SERELIN_REQUIRE(is_gate(type), "gate() needs a combinational type");
  decls_.push_back({std::move(out), type, std::move(fanins)});
  return *this;
}

NetlistBuilder& NetlistBuilder::constant(std::string name, bool value) {
  decls_.push_back(
      {std::move(name), value ? CellType::kConst1 : CellType::kConst0, {}});
  return *this;
}

Netlist NetlistBuilder::build() {
  SERELIN_REQUIRE(!built_, "NetlistBuilder::build() called twice");
  built_ = true;

  std::unordered_map<std::string, std::size_t> decl_index;
  for (std::size_t i = 0; i < decls_.size(); ++i) {
    if (!decl_index.emplace(decls_[i].name, i).second)
      throw ParseError("signal '" + decls_[i].name + "' defined twice");
  }
  auto lookup = [&](const std::string& name) -> std::size_t {
    auto it = decl_index.find(name);
    if (it == decl_index.end())
      throw ParseError("signal '" + name + "' referenced but never defined");
    return it->second;
  };

  Netlist nl(circuit_name_);
  std::vector<NodeId> node_of(decls_.size(), kNullNode);

  // Pass 1: sources (inputs, constants) then flip-flops with dangling D.
  for (std::size_t i = 0; i < decls_.size(); ++i) {
    const Decl& d = decls_[i];
    if (d.type == CellType::kInput || d.type == CellType::kConst0 ||
        d.type == CellType::kConst1)
      node_of[i] = nl.add_node(d.name, d.type, {});
  }
  for (std::size_t i = 0; i < decls_.size(); ++i) {
    const Decl& d = decls_[i];
    if (d.type == CellType::kDff)
      node_of[i] = nl.add_node(d.name, d.type, {kNullNode});
  }

  // Pass 2: combinational gates in dependency order (DFS over gate->gate
  // references; sources and DFFs already exist). An explicit stack keeps
  // deep ISCAS-style chains from overflowing the call stack.
  enum class Mark : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<Mark> mark(decls_.size(), Mark::kWhite);
  for (std::size_t root = 0; root < decls_.size(); ++root) {
    if (!is_gate(decls_[root].type) || mark[root] != Mark::kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack;  // (decl, next fanin)
    stack.emplace_back(root, 0);
    mark[root] = Mark::kGrey;
    while (!stack.empty()) {
      auto& [i, next] = stack.back();
      const Decl& d = decls_[i];
      if (next < d.fanins.size()) {
        const std::size_t dep = lookup(d.fanins[next]);
        ++next;
        if (is_gate(decls_[dep].type)) {
          if (mark[dep] == Mark::kGrey)
            throw ParseError("combinational cycle through signal '" +
                             decls_[dep].name + "'");
          if (mark[dep] == Mark::kWhite) {
            mark[dep] = Mark::kGrey;
            stack.emplace_back(dep, 0);
          }
        }
        continue;
      }
      // All fanins created: create this gate.
      std::vector<NodeId> fanin_ids;
      fanin_ids.reserve(d.fanins.size());
      for (const std::string& f : d.fanins) {
        const NodeId fid = node_of[lookup(f)];
        SERELIN_ASSERT(fid != kNullNode, "dependency order broke");
        fanin_ids.push_back(fid);
      }
      node_of[i] = nl.add_node(d.name, d.type, std::move(fanin_ids));
      mark[i] = Mark::kBlack;
      stack.pop_back();
    }
  }

  // Pass 3: patch flip-flop D inputs, mark outputs, finalize.
  for (std::size_t i = 0; i < decls_.size(); ++i) {
    const Decl& d = decls_[i];
    if (d.type == CellType::kDff)
      nl.set_dff_input(node_of[i], node_of[lookup(d.fanins[0])]);
  }
  for (const std::string& out : output_names_) nl.mark_output(node_of[lookup(out)]);
  nl.finalize();
  return nl;
}

}  // namespace serelin
