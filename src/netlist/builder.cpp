#include "netlist/builder.hpp"

#include <unordered_map>

#include "support/check.hpp"

namespace serelin {

NetlistBuilder::NetlistBuilder(std::string circuit_name)
    : circuit_name_(std::move(circuit_name)) {}

NetlistBuilder& NetlistBuilder::input(std::string name) {
  decls_.push_back({std::move(name), CellType::kInput, {}});
  return *this;
}

NetlistBuilder& NetlistBuilder::output(std::string name) {
  output_names_.push_back(std::move(name));
  return *this;
}

NetlistBuilder& NetlistBuilder::dff(std::string q, std::string d) {
  decls_.push_back({std::move(q), CellType::kDff, {std::move(d)}});
  return *this;
}

NetlistBuilder& NetlistBuilder::gate(std::string out, CellType type,
                                     std::vector<std::string> fanins) {
  SERELIN_REQUIRE(is_gate(type), "gate() needs a combinational type");
  decls_.push_back({std::move(out), type, std::move(fanins)});
  return *this;
}

NetlistBuilder& NetlistBuilder::constant(std::string name, bool value) {
  decls_.push_back(
      {std::move(name), value ? CellType::kConst1 : CellType::kConst0, {}});
  return *this;
}

NetlistBuilder& NetlistBuilder::at_line(int line) {
  if (!decls_.empty()) decls_.back().line = line;
  return *this;
}

Netlist NetlistBuilder::build() {
  SERELIN_REQUIRE(!built_, "NetlistBuilder::build() called twice");
  built_ = true;

  std::unordered_map<std::string, std::size_t> decl_index;
  for (std::size_t i = 0; i < decls_.size(); ++i) {
    if (!decl_index.emplace(decls_[i].name, i).second)
      throw ParseError("signal '" + decls_[i].name + "' defined twice");
  }
  auto lookup = [&](const std::string& name) -> std::size_t {
    auto it = decl_index.find(name);
    if (it == decl_index.end())
      throw ParseError("signal '" + name + "' referenced but never defined");
    return it->second;
  };

  Netlist nl(circuit_name_);
  std::vector<NodeId> node_of(decls_.size(), kNullNode);

  // Pass 1: sources (inputs, constants) then flip-flops with dangling D.
  for (std::size_t i = 0; i < decls_.size(); ++i) {
    const Decl& d = decls_[i];
    if (d.type == CellType::kInput || d.type == CellType::kConst0 ||
        d.type == CellType::kConst1)
      node_of[i] = nl.add_node(d.name, d.type, {});
  }
  for (std::size_t i = 0; i < decls_.size(); ++i) {
    const Decl& d = decls_[i];
    if (d.type == CellType::kDff)
      node_of[i] = nl.add_node(d.name, d.type, {kNullNode});
  }

  // Pass 2: combinational gates in dependency order (DFS over gate->gate
  // references; sources and DFFs already exist). An explicit stack keeps
  // deep ISCAS-style chains from overflowing the call stack.
  enum class Mark : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<Mark> mark(decls_.size(), Mark::kWhite);
  for (std::size_t root = 0; root < decls_.size(); ++root) {
    if (!is_gate(decls_[root].type) || mark[root] != Mark::kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack;  // (decl, next fanin)
    stack.emplace_back(root, 0);
    mark[root] = Mark::kGrey;
    while (!stack.empty()) {
      auto& [i, next] = stack.back();
      const Decl& d = decls_[i];
      if (next < d.fanins.size()) {
        const std::size_t dep = lookup(d.fanins[next]);
        ++next;
        if (is_gate(decls_[dep].type)) {
          if (mark[dep] == Mark::kGrey)
            throw ParseError("combinational cycle through signal '" +
                             decls_[dep].name + "'");
          if (mark[dep] == Mark::kWhite) {
            mark[dep] = Mark::kGrey;
            stack.emplace_back(dep, 0);
          }
        }
        continue;
      }
      // All fanins created: create this gate.
      std::vector<NodeId> fanin_ids;
      fanin_ids.reserve(d.fanins.size());
      for (const std::string& f : d.fanins) {
        const NodeId fid = node_of[lookup(f)];
        SERELIN_ASSERT(fid != kNullNode, "dependency order broke");
        fanin_ids.push_back(fid);
      }
      node_of[i] = nl.add_node(d.name, d.type, std::move(fanin_ids));
      mark[i] = Mark::kBlack;
      stack.pop_back();
    }
  }

  // Pass 3: patch flip-flop D inputs, mark outputs, finalize.
  for (std::size_t i = 0; i < decls_.size(); ++i) {
    const Decl& d = decls_[i];
    if (d.type == CellType::kDff)
      nl.set_dff_input(node_of[i], node_of[lookup(d.fanins[0])]);
  }
  for (const std::string& out : output_names_) nl.mark_output(node_of[lookup(out)]);
  nl.finalize();
  return nl;
}

Netlist NetlistBuilder::build(DiagnosticSink& sink) {
  SERELIN_REQUIRE(!built_, "NetlistBuilder::build() called twice");
  built_ = true;

  // Pass 0: sanitize declarations. Empty names, illegal arities and empty
  // fanin names make a declaration unusable as written; it is demoted to a
  // synthesized input (keeping the signal defined for its consumers) or,
  // for an empty name, dropped outright.
  std::vector<Decl> decls;
  decls.reserve(decls_.size());
  for (Decl& d : decls_) {
    if (d.name.empty()) {
      sink.error(DiagCode::kNetBadArity, d.line,
                 "declaration with empty signal name dropped");
      continue;
    }
    bool bad = false;
    const int fi = static_cast<int>(d.fanins.size());
    if (d.type == CellType::kDff) {
      bad = fi != 1;
    } else if (is_gate(d.type)) {
      bad = fi < min_fanins(d.type) || fi > max_fanins(d.type);
    } else {
      bad = fi != 0;
    }
    for (const std::string& f : d.fanins) bad = bad || f.empty();
    if (bad) {
      sink.error(DiagCode::kNetBadArity, d.line,
                 "'" + d.name + "' (" +
                     std::string(cell_type_name(d.type)) +
                     ") has a malformed fanin list; demoted to an input");
      decls.push_back({d.name, CellType::kInput, {}, d.line});
      continue;
    }
    decls.push_back(std::move(d));
  }

  // Pass 1: first definition wins; later redefinitions are dropped.
  std::unordered_map<std::string, std::size_t> decl_index;
  {
    std::vector<Decl> unique;
    unique.reserve(decls.size());
    for (Decl& d : decls) {
      if (decl_index.emplace(d.name, unique.size()).second) {
        unique.push_back(std::move(d));
      } else {
        sink.error(DiagCode::kNetMultiplyDriven, d.line,
                   "signal '" + d.name +
                       "' defined more than once; first definition wins");
      }
    }
    decls = std::move(unique);
  }

  // Pass 2: synthesize an input for every name that is referenced (by a
  // fanin or an OUTPUT) but never defined.
  auto synthesize = [&](const std::string& name, DiagCode code, int line,
                        const std::string& what) {
    if (decl_index.count(name)) return;
    sink.error(code, line, what);
    decl_index.emplace(name, decls.size());
    decls.push_back({name, CellType::kInput, {}, line});
  };
  for (std::size_t i = 0, defined = decls.size(); i < defined; ++i) {
    const Decl d = decls[i];  // copy: decls grows inside the loop
    for (const std::string& f : d.fanins) {
      if (d.type == CellType::kDff) {
        synthesize(f, DiagCode::kNetDffMissingDriver, d.line,
                   "flip-flop '" + d.name + "' D pin references undefined '" +
                       f + "'; input synthesized");
      } else {
        synthesize(f, DiagCode::kNetUndefined, d.line,
                   "signal '" + f + "' referenced by '" + d.name +
                       "' but never defined; input synthesized");
      }
    }
  }
  for (const std::string& out : output_names_)
    synthesize(out, DiagCode::kNetUndefined, 0,
               "OUTPUT references undefined signal '" + out +
                   "'; input synthesized");

  auto lookup = [&](const std::string& name) {
    const auto it = decl_index.find(name);
    SERELIN_ASSERT(it != decl_index.end(), "reference escaped synthesis");
    return it->second;
  };

  Netlist nl(circuit_name_);
  std::vector<NodeId> node_of(decls.size(), kNullNode);
  // Gates demoted to inputs while cutting combinational cycles.
  std::vector<char> demoted(decls.size(), 0);

  // Pass 3: sources, then flip-flops with dangling D (as in strict build).
  for (std::size_t i = 0; i < decls.size(); ++i) {
    const Decl& d = decls[i];
    if (d.type == CellType::kInput || d.type == CellType::kConst0 ||
        d.type == CellType::kConst1)
      node_of[i] = nl.add_node(d.name, d.type, {});
  }
  for (std::size_t i = 0; i < decls.size(); ++i) {
    const Decl& d = decls[i];
    if (d.type == CellType::kDff)
      node_of[i] = nl.add_node(d.name, d.type, {kNullNode});
  }

  // Pass 4: gates in dependency order; a back edge (grey target) is a
  // combinational cycle — the target gate is demoted to a synthesized
  // input on the spot (its node id is created immediately, so dependents
  // resolve; when its own frame completes the gate creation is skipped).
  enum class Mark : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<Mark> mark(decls.size(), Mark::kWhite);
  auto is_live_gate = [&](std::size_t i) {
    return is_gate(decls[i].type) && !demoted[i];
  };
  for (std::size_t root = 0; root < decls.size(); ++root) {
    if (!is_live_gate(root) || mark[root] != Mark::kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    stack.emplace_back(root, 0);
    mark[root] = Mark::kGrey;
    while (!stack.empty()) {
      auto& [i, next] = stack.back();
      const Decl& d = decls[i];
      if (!demoted[i] && next < d.fanins.size()) {
        const std::size_t dep = lookup(d.fanins[next]);
        ++next;
        if (is_live_gate(dep)) {
          if (mark[dep] == Mark::kGrey) {
            sink.error(DiagCode::kNetCombCycle, decls[dep].line,
                       "combinational cycle through signal '" +
                           decls[dep].name +
                           "'; gate demoted to an input to cut it");
            demoted[dep] = 1;
            node_of[dep] = nl.add_node(decls[dep].name, CellType::kInput, {});
          } else if (mark[dep] == Mark::kWhite) {
            mark[dep] = Mark::kGrey;
            stack.emplace_back(dep, 0);
          }
        }
        continue;
      }
      if (!demoted[i]) {
        std::vector<NodeId> fanin_ids;
        fanin_ids.reserve(d.fanins.size());
        for (const std::string& f : d.fanins) {
          const NodeId fid = node_of[lookup(f)];
          SERELIN_ASSERT(fid != kNullNode, "dependency order broke");
          fanin_ids.push_back(fid);
        }
        node_of[i] = nl.add_node(d.name, d.type, std::move(fanin_ids));
      }
      mark[i] = Mark::kBlack;
      stack.pop_back();
    }
  }

  // Pass 5: patch flip-flop D inputs, mark outputs, finalize.
  for (std::size_t i = 0; i < decls.size(); ++i) {
    const Decl& d = decls[i];
    if (d.type == CellType::kDff)
      nl.set_dff_input(node_of[i], node_of[lookup(d.fanins[0])]);
  }
  for (const std::string& out : output_names_)
    nl.mark_output(node_of[lookup(out)]);
  nl.finalize();
  return nl;
}

}  // namespace serelin
