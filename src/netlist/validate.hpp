// Structural lint for finalized netlists, plus a warn-level repair pass.
//
// The builder's recovering build() already turns construction-time defects
// (multiply-driven signals, undefined references, DFFs with missing
// drivers, combinational cycles) into diagnostics and repairs them — those
// can only be expressed on the way *into* a Netlist. This pass covers what
// is only visible on the finished graph:
//
//   ERROR lint-no-outputs     the circuit drives no primary output, so
//                             every downstream analysis is vacuous
//   WARN  lint-dangling-net   a gate or flip-flop whose value goes
//                             nowhere (no fanouts, not a primary output)
//   WARN  lint-unreferenced   logic outside the input cone of every
//                             primary output (a dead island that may
//                             still have internal fanout)
//   WARN  lint-unused-input   a primary input nothing reads
//
// repair_netlist() sweeps the warn-level findings: it rebuilds the netlist
// keeping exactly the primary inputs (the interface is preserved) and the
// backward cone of the primary outputs. Error-level findings are not
// repairable here and are left to the caller.
#pragma once

#include "netlist/netlist.hpp"
#include "support/diag.hpp"

namespace serelin {

/// Reports the lint findings above into `sink`. Requires a finalized
/// netlist. Returns the number of findings (errors + warnings).
std::size_t lint_netlist(const Netlist& nl, DiagnosticSink& sink);

/// Returns a finalized copy of `nl` with warn-level lint findings swept:
/// dead gates and flip-flops are dropped, primary inputs are all kept.
/// Each removal is reported to `sink` as a NOTE. A netlist with no
/// primary outputs collapses to its inputs (lint-no-outputs is reported
/// as an error first — callers should lint before deciding to repair).
Netlist repair_netlist(const Netlist& nl, DiagnosticSink& sink);

/// Name-keyed structural equality of two finalized netlists, the relation
/// a write/reparse round trip must preserve: same primary input and
/// output name sets, and for every name the same cell type and the same
/// fanin names in the same pin order. Node ids, declaration order and the
/// circuit name may differ. On mismatch, `why` (when non-null) receives a
/// one-line account of the first difference found.
bool structurally_equal(const Netlist& a, const Netlist& b,
                        std::string* why = nullptr);

}  // namespace serelin
