// NetlistBuilder: name-based, order-independent netlist construction.
//
// .bench files (and tests) reference signals before they are defined —
// feedback through flip-flops makes that unavoidable. The builder records
// declarations by name, then build() resolves references, orders node
// creation legally, patches flip-flop feedback and finalizes the netlist.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace serelin {

class NetlistBuilder {
 public:
  explicit NetlistBuilder(std::string circuit_name = "circuit");

  /// Declares a primary input signal.
  NetlistBuilder& input(std::string name);

  /// Declares that signal `name` drives a primary output.
  NetlistBuilder& output(std::string name);

  /// Declares a flip-flop: q = DFF(d).
  NetlistBuilder& dff(std::string q, std::string d);

  /// Declares a combinational gate: out = type(fanins...).
  NetlistBuilder& gate(std::string out, CellType type,
                       std::vector<std::string> fanins);

  /// Declares a constant signal.
  NetlistBuilder& constant(std::string name, bool value);

  /// Resolves everything and returns the finalized netlist. Throws
  /// ParseError on undefined signals, redefinitions, or combinational
  /// cycles. The builder is consumed (one-shot).
  Netlist build();

 private:
  struct Decl {
    std::string name;
    CellType type;
    std::vector<std::string> fanins;
  };

  std::string circuit_name_;
  std::vector<Decl> decls_;
  std::vector<std::string> output_names_;
  bool built_ = false;
};

}  // namespace serelin
