// NetlistBuilder: name-based, order-independent netlist construction.
//
// .bench files (and tests) reference signals before they are defined —
// feedback through flip-flops makes that unavoidable. The builder records
// declarations by name, then build() resolves references, orders node
// creation legally, patches flip-flop feedback and finalizes the netlist.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "support/diag.hpp"

namespace serelin {

class NetlistBuilder {
 public:
  explicit NetlistBuilder(std::string circuit_name = "circuit");

  /// Declares a primary input signal.
  NetlistBuilder& input(std::string name);

  /// Declares that signal `name` drives a primary output.
  NetlistBuilder& output(std::string name);

  /// Declares a flip-flop: q = DFF(d).
  NetlistBuilder& dff(std::string q, std::string d);

  /// Declares a combinational gate: out = type(fanins...).
  NetlistBuilder& gate(std::string out, CellType type,
                       std::vector<std::string> fanins);

  /// Declares a constant signal.
  NetlistBuilder& constant(std::string name, bool value);

  /// Resolves everything and returns the finalized netlist. Throws
  /// ParseError on undefined signals, redefinitions, or combinational
  /// cycles. The builder is consumed (one-shot).
  Netlist build();

  /// Recovering build: structural defects become diagnostics in `sink`
  /// and are repaired instead of aborting the build —
  ///   * multiply-driven signal        -> first definition wins
  ///   * undefined reference           -> a primary input is synthesized
  ///   * DFF with an undefined D pin   -> same, with its own code
  ///   * combinational cycle           -> one member gate is demoted to a
  ///                                      synthesized input (cycle cut)
  ///   * illegal arity / empty names   -> declaration dropped or demoted
  /// Every repair is an ERROR-severity diagnostic (the input was wrong);
  /// the returned netlist is always finalized and structurally legal.
  /// Callers wanting strict semantics use sink.throw_if_errors() after.
  /// Optionally records each decl's source line for diagnostics via
  /// set_source_line().
  Netlist build(DiagnosticSink& sink);

  /// Tags the most recently added declaration with its source line, so
  /// build(sink) diagnostics point at the offending input line.
  NetlistBuilder& at_line(int line);

 private:
  struct Decl {
    std::string name;
    CellType type;
    std::vector<std::string> fanins;
    int line = 0;
  };

  std::string circuit_name_;
  std::vector<Decl> decls_;
  std::vector<std::string> output_names_;
  bool built_ = false;
};

}  // namespace serelin
