#include "netlist/validate.hpp"

#include <vector>

#include "netlist/builder.hpp"
#include "support/check.hpp"

namespace serelin {

namespace {

/// Marks every node in the input cone of a primary output (through gate
/// fanins and DFF D pins).
std::vector<char> live_cone(const Netlist& nl) {
  std::vector<char> live(nl.node_count(), 0);
  std::vector<NodeId> stack;
  for (NodeId id : nl.outputs()) {
    if (!live[id]) {
      live[id] = 1;
      stack.push_back(id);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId f : nl.node(id).fanins) {
      if (!live[f]) {
        live[f] = 1;
        stack.push_back(f);
      }
    }
  }
  return live;
}

}  // namespace

std::size_t lint_netlist(const Netlist& nl, DiagnosticSink& sink) {
  SERELIN_REQUIRE(nl.finalized(), "lint_netlist needs a finalized netlist");
  std::size_t findings = 0;

  if (nl.outputs().empty()) {
    sink.error(DiagCode::kLintNoOutputs, 0,
               "netlist '" + nl.name() + "' has no primary outputs");
    ++findings;
  }

  const std::vector<char> live = live_cone(nl);
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    const bool sinks_somewhere = !n.fanouts.empty() || nl.is_output(id);
    if (n.type == CellType::kInput) {
      if (!sinks_somewhere) {
        sink.warning(DiagCode::kLintUnusedInput, 0,
                     "input '" + n.name + "' is never read");
        ++findings;
      }
      continue;
    }
    if (!sinks_somewhere) {
      sink.warning(DiagCode::kLintDanglingNet, 0,
                   "signal '" + n.name + "' (" +
                       std::string(cell_type_name(n.type)) +
                       ") drives nothing");
      ++findings;
    } else if (!live[id]) {
      sink.warning(DiagCode::kLintUnreferenced, 0,
                   "signal '" + n.name + "' (" +
                       std::string(cell_type_name(n.type)) +
                       ") is outside every output cone");
      ++findings;
    }
  }
  return findings;
}

Netlist repair_netlist(const Netlist& nl, DiagnosticSink& sink) {
  SERELIN_REQUIRE(nl.finalized(), "repair_netlist needs a finalized netlist");
  const std::vector<char> live = live_cone(nl);

  NetlistBuilder builder(nl.name());
  std::size_t swept = 0;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == CellType::kInput) {
      builder.input(n.name);  // the interface survives repair
      continue;
    }
    if (!live[id]) {
      sink.note(DiagCode::kLintUnreferenced, 0,
                "repair swept dead signal '" + n.name + "'");
      ++swept;
      continue;
    }
    if (n.type == CellType::kDff) {
      builder.dff(n.name, nl.node(n.fanins[0]).name);
    } else if (n.type == CellType::kConst0 || n.type == CellType::kConst1) {
      builder.constant(n.name, n.type == CellType::kConst1);
    } else {
      std::vector<std::string> fanins;
      fanins.reserve(n.fanins.size());
      for (NodeId f : n.fanins) fanins.push_back(nl.node(f).name);
      builder.gate(n.name, n.type, std::move(fanins));
    }
  }
  for (NodeId id : nl.outputs()) builder.output(nl.node(id).name);
  if (swept)
    sink.note(DiagCode::kLintUnreferenced, 0,
              "repair swept " + std::to_string(swept) + " dead signal(s)");
  // The source netlist was finalized (legal) and we only removed whole
  // dead cones, so the strict build cannot fail.
  return builder.build();
}

}  // namespace serelin
