#include "netlist/validate.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "netlist/builder.hpp"
#include "support/check.hpp"

namespace serelin {

namespace {

/// Marks every node in the input cone of a primary output (through gate
/// fanins and DFF D pins).
std::vector<char> live_cone(const Netlist& nl) {
  std::vector<char> live(nl.node_count(), 0);
  std::vector<NodeId> stack;
  for (NodeId id : nl.outputs()) {
    if (!live[id]) {
      live[id] = 1;
      stack.push_back(id);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId f : nl.node(id).fanins) {
      if (!live[f]) {
        live[f] = 1;
        stack.push_back(f);
      }
    }
  }
  return live;
}

}  // namespace

std::size_t lint_netlist(const Netlist& nl, DiagnosticSink& sink) {
  SERELIN_REQUIRE(nl.finalized(), "lint_netlist needs a finalized netlist");
  std::size_t findings = 0;

  if (nl.outputs().empty()) {
    sink.error(DiagCode::kLintNoOutputs, 0,
               "netlist '" + nl.name() + "' has no primary outputs");
    ++findings;
  }

  const std::vector<char> live = live_cone(nl);
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    const bool sinks_somewhere = !n.fanouts.empty() || nl.is_output(id);
    if (n.type == CellType::kInput) {
      if (!sinks_somewhere) {
        sink.warning(DiagCode::kLintUnusedInput, 0,
                     "input '" + n.name + "' is never read");
        ++findings;
      }
      continue;
    }
    if (!sinks_somewhere) {
      sink.warning(DiagCode::kLintDanglingNet, 0,
                   "signal '" + n.name + "' (" +
                       std::string(cell_type_name(n.type)) +
                       ") drives nothing");
      ++findings;
    } else if (!live[id]) {
      sink.warning(DiagCode::kLintUnreferenced, 0,
                   "signal '" + n.name + "' (" +
                       std::string(cell_type_name(n.type)) +
                       ") is outside every output cone");
      ++findings;
    }
  }
  return findings;
}

Netlist repair_netlist(const Netlist& nl, DiagnosticSink& sink) {
  SERELIN_REQUIRE(nl.finalized(), "repair_netlist needs a finalized netlist");
  const std::vector<char> live = live_cone(nl);

  NetlistBuilder builder(nl.name());
  std::size_t swept = 0;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == CellType::kInput) {
      builder.input(n.name);  // the interface survives repair
      continue;
    }
    if (!live[id]) {
      sink.note(DiagCode::kLintUnreferenced, 0,
                "repair swept dead signal '" + n.name + "'");
      ++swept;
      continue;
    }
    if (n.type == CellType::kDff) {
      builder.dff(n.name, nl.node(n.fanins[0]).name);
    } else if (n.type == CellType::kConst0 || n.type == CellType::kConst1) {
      builder.constant(n.name, n.type == CellType::kConst1);
    } else {
      std::vector<std::string> fanins;
      fanins.reserve(n.fanins.size());
      for (NodeId f : n.fanins) fanins.push_back(nl.node(f).name);
      builder.gate(n.name, n.type, std::move(fanins));
    }
  }
  for (NodeId id : nl.outputs()) builder.output(nl.node(id).name);
  if (swept)
    sink.note(DiagCode::kLintUnreferenced, 0,
              "repair swept " + std::to_string(swept) + " dead signal(s)");
  // The source netlist was finalized (legal) and we only removed whole
  // dead cones, so the strict build cannot fail.
  return builder.build();
}

namespace {

std::vector<std::string> sorted_names(const Netlist& nl,
                                      const std::vector<NodeId>& ids) {
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (NodeId id : ids) names.push_back(nl.node(id).name);
  std::sort(names.begin(), names.end());
  return names;
}

bool mismatch(std::string* why, const std::string& msg) {
  if (why) *why = msg;
  return false;
}

}  // namespace

bool structurally_equal(const Netlist& a, const Netlist& b,
                        std::string* why) {
  SERELIN_REQUIRE(a.finalized() && b.finalized(),
                  "structurally_equal needs finalized netlists");
  if (a.node_count() != b.node_count())
    return mismatch(why, "node counts differ: " +
                             std::to_string(a.node_count()) + " vs " +
                             std::to_string(b.node_count()));
  if (sorted_names(a, a.inputs()) != sorted_names(b, b.inputs()))
    return mismatch(why, "primary input name sets differ");
  if (sorted_names(a, a.outputs()) != sorted_names(b, b.outputs()))
    return mismatch(why, "primary output name sets differ");
  for (NodeId id = 0; id < a.node_count(); ++id) {
    const Node& na = a.node(id);
    const NodeId other = b.find(na.name);
    if (other == kNullNode)
      return mismatch(why, "signal '" + na.name + "' missing from the other "
                                                  "netlist");
    const Node& nb = b.node(other);
    if (na.type != nb.type)
      return mismatch(why, "signal '" + na.name + "' is " +
                               std::string(cell_type_name(na.type)) +
                               " vs " + std::string(cell_type_name(nb.type)));
    if (na.fanins.size() != nb.fanins.size())
      return mismatch(why, "signal '" + na.name + "' fanin counts differ");
    for (std::size_t i = 0; i < na.fanins.size(); ++i)
      if (a.node(na.fanins[i]).name != b.node(nb.fanins[i]).name)
        return mismatch(why, "signal '" + na.name + "' fanin " +
                                 std::to_string(i) + " is '" +
                                 a.node(na.fanins[i]).name + "' vs '" +
                                 b.node(nb.fanins[i]).name + "'");
  }
  return true;
}

}  // namespace serelin
