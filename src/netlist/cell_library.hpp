// Per-cell-type physical characterization: delay d(g), raw soft-error rate
// err(g) and area.
//
// The paper extracts err(g) "from SPICE characterization using the method in
// [25]" (Rao et al., DATE'06). SPICE models and the 130nm-era characterization
// data are not available, so this module substitutes a deterministic table
// with the qualitative structure such characterizations exhibit:
//   * small cells (INV/BUF) have small collected-charge cross-sections but
//     low critical charge -> moderate raw SER;
//   * higher-fan-in cells have larger diffusion area -> higher raw SER;
//   * flip-flops have their own (internal-node) upset rate.
// Eq. (4) of the paper consumes err(g) only as a positive per-gate weight,
// so any fixed positive table exercises the identical optimization math.
// The table can be replaced wholesale (e.g. from a real characterization
// file) via the CellLibrary constructor.
//
// Delays are small integers per type, consistent with the integer clock
// periods the paper reports (Φ values like 117, 195, 317).
#pragma once

#include <array>

#include "netlist/cell.hpp"

namespace serelin {

/// Characterization record for one cell type.
struct CellParams {
  double delay = 1.0;  ///< propagation delay d(g) (arbitrary time units)
  double err = 0.0;    ///< raw soft-error (SEU generation) rate of the cell
  double area = 1.0;   ///< relative area (used by the area-weighted extension)
};

class CellLibrary {
 public:
  /// The default characterization used throughout the reproduction.
  CellLibrary();

  /// Custom characterization.
  explicit CellLibrary(std::array<CellParams, kNumCellTypes> params);

  const CellParams& params(CellType type) const {
    return params_[static_cast<std::size_t>(type)];
  }

  double delay(CellType type) const { return params(type).delay; }
  double err(CellType type) const { return params(type).err; }
  double area(CellType type) const { return params(type).area; }

  /// Replaces the record for one type (used by ablation benches).
  void set_params(CellType type, const CellParams& p) {
    params_[static_cast<std::size_t>(type)] = p;
  }

 private:
  std::array<CellParams, kNumCellTypes> params_;
};

}  // namespace serelin
