#include "netlist/cell.hpp"

#include <limits>
#include <string>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace serelin {

std::string_view cell_type_name(CellType type) {
  switch (type) {
    case CellType::kInput:  return "INPUT";
    case CellType::kDff:    return "DFF";
    case CellType::kBuf:    return "BUFF";
    case CellType::kNot:    return "NOT";
    case CellType::kAnd:    return "AND";
    case CellType::kNand:   return "NAND";
    case CellType::kOr:     return "OR";
    case CellType::kNor:    return "NOR";
    case CellType::kXor:    return "XOR";
    case CellType::kXnor:   return "XNOR";
    case CellType::kConst0: return "CONST0";
    case CellType::kConst1: return "CONST1";
  }
  SERELIN_ASSERT(false, "unreachable cell type");
}

std::optional<CellType> try_parse_cell_type(std::string_view keyword) {
  const std::string up = to_upper(keyword);
  if (up == "INPUT") return CellType::kInput;
  if (up == "DFF") return CellType::kDff;
  if (up == "BUF" || up == "BUFF") return CellType::kBuf;
  if (up == "NOT" || up == "INV") return CellType::kNot;
  if (up == "AND") return CellType::kAnd;
  if (up == "NAND") return CellType::kNand;
  if (up == "OR") return CellType::kOr;
  if (up == "NOR") return CellType::kNor;
  if (up == "XOR") return CellType::kXor;
  if (up == "XNOR") return CellType::kXnor;
  if (up == "CONST0" || up == "GND") return CellType::kConst0;
  if (up == "CONST1" || up == "VDD") return CellType::kConst1;
  return std::nullopt;
}

CellType parse_cell_type(std::string_view keyword) {
  if (const auto t = try_parse_cell_type(keyword)) return *t;
  throw ParseError("unknown cell type keyword: " + std::string(keyword));
}

bool is_combinational_source(CellType type) {
  return type == CellType::kInput || type == CellType::kDff ||
         type == CellType::kConst0 || type == CellType::kConst1;
}

bool is_gate(CellType type) {
  switch (type) {
    case CellType::kBuf:
    case CellType::kNot:
    case CellType::kAnd:
    case CellType::kNand:
    case CellType::kOr:
    case CellType::kNor:
    case CellType::kXor:
    case CellType::kXnor:
      return true;
    default:
      return false;
  }
}

int min_fanins(CellType type) {
  switch (type) {
    case CellType::kInput:
    case CellType::kConst0:
    case CellType::kConst1:
      return 0;
    case CellType::kDff:
    case CellType::kBuf:
    case CellType::kNot:
      return 1;
    default:
      return 1;  // .bench files occasionally use 1-input AND/OR as buffers
  }
}

int max_fanins(CellType type) {
  switch (type) {
    case CellType::kInput:
    case CellType::kConst0:
    case CellType::kConst1:
      return 0;
    case CellType::kDff:
    case CellType::kBuf:
    case CellType::kNot:
      return 1;
    default:
      return std::numeric_limits<int>::max();
  }
}

std::uint64_t eval_cell(CellType type, std::span<const std::uint64_t> fanins) {
  switch (type) {
    case CellType::kConst0:
      return 0;
    case CellType::kConst1:
      return ~0ULL;
    case CellType::kInput:
      SERELIN_ASSERT(false, "eval_cell on a primary input (set by simulator)");
    case CellType::kDff:
    case CellType::kBuf:
      return fanins[0];
    case CellType::kNot:
      return ~fanins[0];
    case CellType::kAnd:
    case CellType::kNand: {
      std::uint64_t acc = ~0ULL;
      for (std::uint64_t w : fanins) acc &= w;
      return type == CellType::kAnd ? acc : ~acc;
    }
    case CellType::kOr:
    case CellType::kNor: {
      std::uint64_t acc = 0;
      for (std::uint64_t w : fanins) acc |= w;
      return type == CellType::kOr ? acc : ~acc;
    }
    case CellType::kXor:
    case CellType::kXnor: {
      std::uint64_t acc = 0;
      for (std::uint64_t w : fanins) acc ^= w;
      return type == CellType::kXor ? acc : ~acc;
    }
  }
  SERELIN_ASSERT(false, "unreachable cell type");
}

}  // namespace serelin
