#include "netlist/io_common.hpp"

#include <filesystem>

namespace serelin::ioutil {

std::string path_stem(const std::string& path) {
  std::string stem = path;
  if (const auto slash = stem.find_last_of('/'); slash != std::string::npos)
    stem = stem.substr(slash + 1);
  if (const auto dot = stem.find_last_of('.'); dot != std::string::npos)
    stem = stem.substr(0, dot);
  return stem;
}

bool open_text_input(const std::string& path, std::ifstream& in,
                     DiagnosticSink& sink) {
  sink.set_file(path);
  in.open(path);
  if (in) return true;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    sink.error(DiagCode::kIoNotFound, 0, "cannot open '" + path +
                                             "': file not found");
  } else {
    sink.error(DiagCode::kIoUnreadable, 0,
               "cannot open '" + path +
                   "': file exists but is unreadable (permissions? "
                   "directory?)");
  }
  return false;
}

bool ascii_clean(std::string_view s) {
  for (const char c : s) {
    const auto b = static_cast<unsigned char>(c);
    if (b == '\t') continue;
    if (b < 0x20 || b >= 0x7F) return false;
  }
  return true;
}

void check_stream(std::istream& in, DiagnosticSink& sink) {
  if (in.bad())
    sink.error(DiagCode::kIoStreamError, 0,
               "I/O failure while reading; input truncated mid-stream");
}

}  // namespace serelin::ioutil
