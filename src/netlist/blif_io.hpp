// Reader/writer for the structural subset of Berkeley BLIF — the other
// lingua franca of academic logic-synthesis tools (SIS, ABC, VTR).
//
// Supported constructs:
//   .model <name>            (first model only; .search is not followed)
//   .inputs / .outputs       (continuation lines via '\' supported)
//   .latch <in> <out> [<type> <ctrl>] [<init>]   -> DFF (init ignored;
//                                                  .bench carries none)
//   .names <in...> <out>     single-output cover; recognized covers map to
//                            serelin cell types:
//                              constants, BUF, NOT, AND, OR, NAND, NOR,
//                              XOR, XNOR (any arity)
//   .end, comments (#), line continuation ('\')
// Covers that match no recognized function are rejected — serelin's SER
// model is gate-based, so arbitrary LUTs would need a technology-mapping
// step that is out of scope.
//
// The writer emits one .names cover per gate (and .latch per flip-flop),
// readable by ABC/SIS and by this reader (round-trip tested).
//
// Mirrors bench_io's two modes: the 2-argument overloads are strict (one
// DiagnosticError raised at the end carrying every collected diagnostic),
// the DiagnosticSink overloads recover (bad constructs become diagnostics
// and are skipped or repaired; nothing is thrown for malformed input).
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "support/diag.hpp"

namespace serelin {

/// Parses BLIF text (strict); throws DiagnosticError on malformed or
/// unsupported input, after consuming the whole stream.
Netlist read_blif(std::istream& in, std::string fallback_name = "circuit");

/// Parses BLIF text (recovering): defects become diagnostics in `sink`
/// and a finalized netlist is always returned.
Netlist read_blif(std::istream& in, std::string fallback_name,
                  DiagnosticSink& sink);

/// Parses a .blif file from disk, strict.
Netlist read_blif_file(const std::string& path);

/// Parses a .blif file from disk, recovering (open and stream failures are
/// diagnostics; an unopenable file yields an empty netlist).
Netlist read_blif_file(const std::string& path, DiagnosticSink& sink);

/// Writes the netlist as structural BLIF.
void write_blif(std::ostream& out, const Netlist& nl);

/// Writes a .blif file to disk.
void write_blif_file(const std::string& path, const Netlist& nl);

}  // namespace serelin
