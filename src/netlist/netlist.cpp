#include "netlist/netlist.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace serelin {

NodeId Netlist::add_node(std::string name, CellType type,
                         std::vector<NodeId> fanins) {
  SERELIN_REQUIRE(!finalized_, "cannot add nodes after finalize()");
  SERELIN_REQUIRE(!name.empty(), "node names must be non-empty");
  SERELIN_REQUIRE(!by_name_.contains(name), "duplicate node name: " + name);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  for (NodeId f : fanins) {
    if (type == CellType::kDff && f == kNullNode) continue;  // patched later
    SERELIN_REQUIRE(f < id, "fanin of '" + name +
                                "' must reference an existing node");
  }
  by_name_.emplace(name, id);
  nodes_.push_back(Node{std::move(name), type, std::move(fanins), {}});
  switch (type) {
    case CellType::kInput: inputs_.push_back(id); break;
    case CellType::kDff: dffs_.push_back(id); break;
    default: break;
  }
  return id;
}

void Netlist::set_dff_input(NodeId dff, NodeId driver) {
  SERELIN_REQUIRE(!finalized_, "cannot patch after finalize()");
  SERELIN_REQUIRE(dff < nodes_.size() && nodes_[dff].type == CellType::kDff,
                  "set_dff_input target must be a DFF");
  SERELIN_REQUIRE(driver < nodes_.size(), "driver must exist");
  SERELIN_REQUIRE(nodes_[dff].fanins.size() == 1,
                  "a DFF has exactly one fanin slot");
  nodes_[dff].fanins[0] = driver;
}

void Netlist::mark_output(NodeId node) {
  SERELIN_REQUIRE(!finalized_, "cannot mark outputs after finalize()");
  SERELIN_REQUIRE(node < nodes_.size(), "output node must exist");
  if (std::find(outputs_.begin(), outputs_.end(), node) == outputs_.end())
    outputs_.push_back(node);
}

void Netlist::finalize() {
  SERELIN_REQUIRE(!finalized_, "finalize() called twice");
  check_arities();
  build_fanouts();
  compute_gate_order();
  is_output_.assign(nodes_.size(), false);
  for (NodeId o : outputs_) is_output_[o] = true;
  finalized_ = true;
}

NodeId Netlist::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNullNode : it->second;
}

bool Netlist::is_output(NodeId node) const {
  SERELIN_REQUIRE(finalized_, "is_output() requires finalize()");
  return is_output_[node];
}

double Netlist::total_area(const CellLibrary& lib) const {
  double area = 0.0;
  for (const Node& n : nodes_) area += lib.area(n.type);
  return area;
}

std::vector<NodeId> Netlist::all_nodes() const {
  std::vector<NodeId> ids(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i) ids[i] = i;
  return ids;
}

void Netlist::check_arities() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    const int fi = static_cast<int>(n.fanins.size());
    if (fi < min_fanins(n.type) || fi > max_fanins(n.type))
      throw ParseError("node '" + n.name + "' (" +
                       std::string(cell_type_name(n.type)) + ") has illegal fanin count " +
                       std::to_string(fi));
    for (NodeId f : n.fanins) {
      if (f == kNullNode || f >= nodes_.size())
        throw ParseError("node '" + n.name + "' has an unresolved fanin");
    }
  }
}

void Netlist::build_fanouts() {
  for (Node& n : nodes_) n.fanouts.clear();
  for (NodeId id = 0; id < nodes_.size(); ++id)
    for (NodeId f : nodes_[id].fanins) nodes_[f].fanouts.push_back(id);
}

void Netlist::compute_gate_order() {
  // Kahn's algorithm over the one-cycle combinational network: flip-flop
  // outputs, primary inputs and constants are sources; edges into a DFF's D
  // pin terminate a path (the DFF consumes the value at the cycle boundary).
  gate_order_.clear();
  std::vector<std::uint32_t> pending(nodes_.size(), 0);
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (is_gate(n.type)) {
      pending[id] = static_cast<std::uint32_t>(n.fanins.size());
      // Sources do not gate readiness.
      std::uint32_t from_gates = 0;
      for (NodeId f : n.fanins)
        if (is_gate(nodes_[f].type)) ++from_gates;
      pending[id] = from_gates;
      if (from_gates == 0) ready.push_back(id);
    }
  }
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    gate_order_.push_back(id);
    for (NodeId g : nodes_[id].fanouts) {
      if (!is_gate(nodes_[g].type)) continue;
      SERELIN_ASSERT(pending[g] > 0, "topological bookkeeping broke");
      if (--pending[g] == 0) ready.push_back(g);
    }
  }
  std::size_t gates_total = 0;
  for (const Node& n : nodes_)
    if (is_gate(n.type)) ++gates_total;
  if (gate_order_.size() != gates_total)
    throw ParseError("netlist '" + name_ +
                     "' has a combinational cycle (a cycle with no DFF)");
}

}  // namespace serelin
