#include "netlist/cell_library.hpp"

namespace serelin {

namespace {

std::array<CellParams, kNumCellTypes> default_params() {
  std::array<CellParams, kNumCellTypes> p{};
  auto set = [&p](CellType t, double delay, double err, double area) {
    p[static_cast<std::size_t>(t)] = CellParams{delay, err, area};
  };
  // err(g) values are per-cell raw upset rates in arbitrary FIT-like units;
  // only their relative magnitudes matter to the optimization (see header).
  set(CellType::kInput,  0.0, 0.0,     0.0);
  set(CellType::kDff,    0.0, 1.2e-6,  4.0);  // sequential element upset rate
  set(CellType::kBuf,    1.0, 0.6e-6,  1.0);
  set(CellType::kNot,    1.0, 0.6e-6,  1.0);
  set(CellType::kAnd,    2.0, 1.0e-6,  2.0);
  set(CellType::kNand,   2.0, 0.9e-6,  1.5);
  set(CellType::kOr,     2.0, 1.0e-6,  2.0);
  set(CellType::kNor,    2.0, 0.9e-6,  1.5);
  set(CellType::kXor,    3.0, 1.4e-6,  3.0);
  set(CellType::kXnor,   3.0, 1.4e-6,  3.0);
  set(CellType::kConst0, 0.0, 0.0,     0.0);
  set(CellType::kConst1, 0.0, 0.0,     0.0);
  return p;
}

}  // namespace

CellLibrary::CellLibrary() : params_(default_params()) {}

CellLibrary::CellLibrary(std::array<CellParams, kNumCellTypes> params)
    : params_(params) {}

}  // namespace serelin
