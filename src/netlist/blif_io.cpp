#include "netlist/blif_io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "netlist/builder.hpp"
#include "netlist/io_common.hpp"
#include "support/atomic_io.hpp"
#include "support/check.hpp"
#include "support/strings.hpp"

namespace serelin {

namespace {

/// One .names block: fanin names, output name, and the on-set/off-set
/// cover rows (input plane, output bit).
struct Cover {
  std::vector<std::string> fanins;
  std::string output;
  std::vector<std::pair<std::string, char>> rows;
  int line_no = 0;
};

/// Evaluates the cover on one input assignment (bit i of `assignment` is
/// fanin i). BLIF semantics: rows with output bit 1 define the on-set,
/// rows with 0 define the off-set; a single .names block must use one
/// polarity (checked by classify_cover).
bool cover_matches_row(const std::string& plane, unsigned assignment) {
  for (std::size_t i = 0; i < plane.size(); ++i) {
    const bool bit = (assignment >> i) & 1u;
    if (plane[i] == '-') continue;
    if ((plane[i] == '1') != bit) return false;
  }
  return true;
}

bool eval_cover(const Cover& c, unsigned assignment) {
  bool polarity = true;
  if (!c.rows.empty()) polarity = c.rows.front().second == '1';
  for (const auto& [plane, bit] : c.rows)
    if (cover_matches_row(plane, assignment)) return polarity;
  return !polarity;
}

/// Truth table of a candidate cell type on `arity` inputs.
bool eval_type(CellType t, unsigned assignment, int arity) {
  std::vector<std::uint64_t> in(static_cast<std::size_t>(arity));
  for (int i = 0; i < arity; ++i)
    in[static_cast<std::size_t>(i)] = ((assignment >> i) & 1u) ? ~0ULL : 0ULL;
  return (eval_cell(t, in) & 1ULL) != 0;
}

/// Maps a cover to a serelin cell type by exhaustive truth-table match
/// (arity <= 12). Reports a blif-cover diagnostic and returns nullopt when
/// the function is none of ours.
std::optional<CellType> classify_cover(const Cover& c, DiagnosticSink& sink) {
  const int arity = static_cast<int>(c.fanins.size());
  if (arity > 12) {
    sink.error(DiagCode::kBlifCover, c.line_no,
               "cover for '" + c.output + "' has fanin " +
                   std::to_string(arity) + " (classifier limit: 12)");
    return std::nullopt;
  }
  char polarity = c.rows.empty() ? '1' : c.rows.front().second;
  for (const auto& [plane, bit] : c.rows) {
    if (static_cast<int>(plane.size()) != arity) {
      sink.error(DiagCode::kBlifCover, c.line_no,
                 "cover row arity mismatch for '" + c.output + "'");
      return std::nullopt;
    }
    if (bit != polarity) {
      sink.error(DiagCode::kBlifCover, c.line_no,
                 "mixed on-set/off-set cover for '" + c.output + "'");
      return std::nullopt;
    }
    if (bit != '0' && bit != '1') {
      sink.error(DiagCode::kBlifCover, c.line_no,
                 "cover output bit must be 0 or 1 for '" + c.output + "'");
      return std::nullopt;
    }
    for (char ch : plane) {
      if (ch != '0' && ch != '1' && ch != '-') {
        sink.error(DiagCode::kBlifCover, c.line_no,
                   "cover plane may contain only 0, 1, - for '" + c.output +
                       "'");
        return std::nullopt;
      }
    }
  }
  static constexpr CellType kCandidates[] = {
      CellType::kConst0, CellType::kConst1, CellType::kBuf, CellType::kNot,
      CellType::kAnd,    CellType::kNand,   CellType::kOr,  CellType::kNor,
      CellType::kXor,    CellType::kXnor};
  for (CellType t : kCandidates) {
    if (arity < min_fanins(t) || arity > max_fanins(t)) continue;
    if (arity == 0 && !(t == CellType::kConst0 || t == CellType::kConst1))
      continue;
    bool match = true;
    for (unsigned a = 0; a < (1u << arity) && match; ++a)
      match = eval_cover(c, a) == eval_type(t, a, arity);
    if (match) return t;
  }
  sink.error(DiagCode::kBlifCover, c.line_no,
             "cover for '" + c.output +
                 "' is not a recognized gate function (serelin is "
                 "gate-based; run technology mapping first)");
  return std::nullopt;
}

/// Reads logical lines: strips comments and CR, joins '\' continuations,
/// flags non-ASCII physical lines (skipped).
std::vector<std::pair<std::string, int>> logical_lines(std::istream& in,
                                                       DiagnosticSink& sink) {
  std::vector<std::pair<std::string, int>> out;
  std::string raw, acc;
  int line_no = 0, acc_line = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = raw;
    if (!line.empty() && line.back() == '\r')
      line = line.substr(0, line.size() - 1);
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    bool cont = false;
    std::string_view trimmed = trim(line);
    if (!trimmed.empty() && !ioutil::ascii_clean(trimmed)) {
      sink.error(DiagCode::kBadByte, line_no,
                 "non-ASCII or control bytes; line skipped");
      trimmed = {};
    }
    if (!trimmed.empty() && trimmed.back() == '\\') {
      cont = true;
      trimmed = trim(trimmed.substr(0, trimmed.size() - 1));
    }
    if (acc.empty()) acc_line = line_no;
    if (!trimmed.empty()) {
      if (!acc.empty()) acc += ' ';
      acc += std::string(trimmed);
    }
    if (!cont && !acc.empty()) {
      out.emplace_back(std::move(acc), acc_line);
      acc.clear();
    }
  }
  if (!acc.empty()) out.emplace_back(std::move(acc), acc_line);
  ioutil::check_stream(in, sink);
  return out;
}

}  // namespace

Netlist read_blif(std::istream& in, std::string fallback_name,
                  DiagnosticSink& sink) {
  const auto lines = logical_lines(in, sink);
  std::string model_name = std::move(fallback_name);
  std::vector<std::string> inputs, outputs;
  std::vector<std::pair<std::string, std::string>> latches;  // (out, in)
  std::vector<Cover> covers;

  std::size_t i = 0;
  bool ended = false;
  while (i < lines.size() && !ended) {
    const auto& [text, line_no] = lines[i];
    const auto tokens = split(text, " \t");
    SERELIN_ASSERT(!tokens.empty(), "logical lines are non-empty");
    const std::string head = to_upper(tokens[0]);
    if (head == ".MODEL") {
      if (tokens.size() >= 2) model_name = std::string(tokens[1]);
      ++i;
    } else if (head == ".INPUTS") {
      for (std::size_t k = 1; k < tokens.size(); ++k)
        inputs.emplace_back(tokens[k]);
      ++i;
    } else if (head == ".OUTPUTS") {
      for (std::size_t k = 1; k < tokens.size(); ++k)
        outputs.emplace_back(tokens[k]);
      ++i;
    } else if (head == ".LATCH") {
      // .latch <input> <output> [<type> <control>] [<init-val>]
      if (tokens.size() < 3) {
        sink.error(DiagCode::kBlifSyntax, line_no,
                   ".latch needs input and output");
        ++i;
        continue;
      }
      latches.emplace_back(std::string(tokens[2]), std::string(tokens[1]));
      ++i;
    } else if (head == ".NAMES") {
      Cover c;
      c.line_no = line_no;
      for (std::size_t k = 1; k + 1 < tokens.size(); ++k)
        c.fanins.emplace_back(tokens[k]);
      const bool header_ok = tokens.size() >= 2;
      if (!header_ok)
        sink.error(DiagCode::kBlifSyntax, line_no, ".names needs an output");
      else
        c.output = std::string(tokens.back());
      ++i;
      bool rows_ok = true;
      while (i < lines.size() && lines[i].first[0] != '.') {
        const auto row = split(lines[i].first, " \t");
        if (c.fanins.empty()) {
          if (row.size() != 1 || row[0].size() != 1) {
            sink.error(DiagCode::kBlifSyntax, lines[i].second,
                       "constant cover row must be a single bit");
            rows_ok = false;
          } else {
            c.rows.emplace_back("", row[0][0]);
          }
        } else {
          if (row.size() != 2 || row[1].size() != 1) {
            sink.error(DiagCode::kBlifSyntax, lines[i].second,
                       "cover row must be '<plane> <bit>'");
            rows_ok = false;
          } else {
            c.rows.emplace_back(std::string(row[0]), row[1][0]);
          }
        }
        ++i;
      }
      if (header_ok && rows_ok) covers.push_back(std::move(c));
      // A cover with bad rows still defines its output signal: demote it
      // to a synthesized input so consumers stay connected.
      if (header_ok && !rows_ok) inputs.push_back(c.output);
    } else if (head == ".END") {
      ended = true;
    } else if (head == ".SEARCH" || head == ".CLOCK" ||
               head == ".DEFAULT_INPUT_ARRIVAL" ||
               head == ".DEFAULT_OUTPUT_REQUIRED") {
      ++i;  // tolerated and ignored
    } else {
      sink.error(DiagCode::kBlifUnsupported, line_no,
                 "unsupported construct '" + std::string(tokens[0]) + "'");
      ++i;
    }
  }
  if (!ended && !lines.empty())
    sink.warning(DiagCode::kBlifMissingEnd,
                 lines.empty() ? 0 : lines.back().second,
                 "file ended without .end");

  NetlistBuilder builder(model_name);
  for (const std::string& s : inputs) builder.input(s);
  for (const std::string& s : outputs) builder.output(s);
  for (const auto& [q, d] : latches) builder.dff(q, d);
  for (const Cover& c : covers) {
    const std::optional<CellType> t = classify_cover(c, sink);
    if (!t) {
      builder.input(c.output).at_line(c.line_no);
    } else if (*t == CellType::kConst0 || *t == CellType::kConst1) {
      builder.constant(c.output, *t == CellType::kConst1).at_line(c.line_no);
    } else {
      builder.gate(c.output, *t, c.fanins).at_line(c.line_no);
    }
  }
  return builder.build(sink);
}

Netlist read_blif(std::istream& in, std::string fallback_name) {
  DiagnosticSink sink;
  Netlist nl = read_blif(in, std::move(fallback_name), sink);
  sink.throw_if_errors("BLIF parse failed");
  return nl;
}

Netlist read_blif_file(const std::string& path, DiagnosticSink& sink) {
  std::ifstream in;
  if (!ioutil::open_text_input(path, in, sink))
    return NetlistBuilder(ioutil::path_stem(path)).build(sink);
  return read_blif(in, ioutil::path_stem(path), sink);
}

Netlist read_blif_file(const std::string& path) {
  DiagnosticSink sink;
  Netlist nl = read_blif_file(path, sink);
  sink.throw_if_errors("cannot parse BLIF file");
  return nl;
}

namespace {

void write_cover(std::ostream& out, const Netlist& nl, const Node& n) {
  out << ".names";
  for (NodeId f : n.fanins) out << ' ' << nl.node(f).name;
  out << ' ' << n.name << '\n';
  const std::size_t arity = n.fanins.size();
  switch (n.type) {
    case CellType::kConst0:
      break;  // empty cover = constant 0
    case CellType::kConst1:
      out << "1\n";
      break;
    case CellType::kBuf:
      out << "1 1\n";
      break;
    case CellType::kNot:
      out << "0 1\n";
      break;
    case CellType::kAnd:
      out << std::string(arity, '1') << " 1\n";
      break;
    case CellType::kNor:
      out << std::string(arity, '0') << " 1\n";
      break;
    case CellType::kOr:
      for (std::size_t i = 0; i < arity; ++i) {
        std::string plane(arity, '-');
        plane[i] = '1';
        out << plane << " 1\n";
      }
      break;
    case CellType::kNand:
      for (std::size_t i = 0; i < arity; ++i) {
        std::string plane(arity, '-');
        plane[i] = '0';
        out << plane << " 1\n";
      }
      break;
    case CellType::kXor:
    case CellType::kXnor: {
      SERELIN_REQUIRE(arity <= 16,
                      "XOR cover too wide for BLIF emission: " + n.name);
      const bool want_odd = n.type == CellType::kXor;
      for (unsigned a = 0; a < (1u << arity); ++a) {
        const bool odd = __builtin_popcount(a) % 2 == 1;
        if (odd != want_odd) continue;
        std::string plane(arity, '0');
        for (std::size_t i = 0; i < arity; ++i)
          if ((a >> i) & 1u) plane[i] = '1';
        out << plane << " 1\n";
      }
      break;
    }
    default:
      SERELIN_ASSERT(false, "unexpected cell type in BLIF writer");
  }
}

}  // namespace

void write_blif(std::ostream& out, const Netlist& nl) {
  SERELIN_REQUIRE(nl.finalized(), "write_blif needs a finalized netlist");
  out << ".model " << nl.name() << '\n';
  out << ".inputs";
  for (NodeId id : nl.inputs()) out << ' ' << nl.node(id).name;
  out << "\n.outputs";
  for (NodeId id : nl.outputs()) out << ' ' << nl.node(id).name;
  out << '\n';
  for (NodeId id : nl.dffs()) {
    const Node& n = nl.node(id);
    out << ".latch " << nl.node(n.fanins[0]).name << ' ' << n.name
        << " 0\n";
  }
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == CellType::kInput || n.type == CellType::kDff) continue;
    write_cover(out, nl, n);
  }
  out << ".end\n";
}

void write_blif_file(const std::string& path, const Netlist& nl) {
  std::ostringstream out;
  write_blif(out, nl);
  atomic_write_file(path, out.str());
}

}  // namespace serelin
