// Internal helpers shared by the .bench and BLIF readers: file opening
// with distinguishable failure causes, path stemming, and byte hygiene.
#pragma once

#include <fstream>
#include <string>
#include <string_view>

#include "support/diag.hpp"

namespace serelin::ioutil {

/// "dir/c880.bench" -> "c880".
std::string path_stem(const std::string& path);

/// Opens `path` for reading. On failure reports io-not-found (the path
/// does not exist) or io-unreadable (it exists but cannot be opened) to
/// `sink` and returns false. Also stamps the sink's file context.
bool open_text_input(const std::string& path, std::ifstream& in,
                     DiagnosticSink& sink);

/// True when the line contains only printable ASCII and tabs — what a
/// netlist text format may contain outside comments. A stray NUL, control
/// or high byte means the input is binary junk or a corrupted file.
bool ascii_clean(std::string_view s);

/// Reports io-stream-error when the stream went bad (a mid-read I/O
/// failure — as opposed to plain EOF, which is a short but valid read).
void check_stream(std::istream& in, DiagnosticSink& sink);

}  // namespace serelin::ioutil
