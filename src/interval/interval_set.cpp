#include "interval/interval_set.hpp"

#include <algorithm>
#include <ostream>

#include "support/check.hpp"
#include "support/metrics.hpp"

namespace serelin {

IntervalSet::IntervalSet(double lo, double hi) {
  SERELIN_REQUIRE(lo <= hi, "interval needs lo <= hi");
  parts_.push_back({lo, hi});
}

IntervalSet::IntervalSet(std::vector<Interval> intervals)
    : parts_(std::move(intervals)) {
  for (const auto& iv : parts_)
    SERELIN_REQUIRE(iv.lo <= iv.hi, "interval needs lo <= hi");
  normalize();
}

double IntervalSet::measure() const {
  double total = 0.0;
  for (const auto& iv : parts_) total += iv.length();
  return total;
}

double IntervalSet::left() const {
  SERELIN_REQUIRE(!parts_.empty(), "left() of an empty set");
  return parts_.front().lo;
}

double IntervalSet::right() const {
  SERELIN_REQUIRE(!parts_.empty(), "right() of an empty set");
  return parts_.back().hi;
}

bool IntervalSet::contains(double x) const {
  // Binary search for the first interval with hi >= x.
  auto it = std::lower_bound(
      parts_.begin(), parts_.end(), x,
      [](const Interval& iv, double v) { return iv.hi < v; });
  return it != parts_.end() && it->lo <= x;
}

void IntervalSet::insert(double lo, double hi) {
  SERELIN_REQUIRE(lo <= hi, "interval needs lo <= hi");
  SERELIN_COUNT(kElwIntervalOps, 1);
  parts_.push_back({lo, hi});
  normalize();
}

void IntervalSet::unite(const IntervalSet& other) {
  SERELIN_COUNT(kElwIntervalOps, 1);
  parts_.insert(parts_.end(), other.parts_.begin(), other.parts_.end());
  normalize();
}

IntervalSet IntervalSet::shifted(double delta) const {
  SERELIN_COUNT(kElwIntervalOps, 1);
  IntervalSet out;
  out.parts_.reserve(parts_.size());
  for (const auto& iv : parts_) out.parts_.push_back({iv.lo + delta, iv.hi + delta});
  // Shifting preserves ordering and disjointness; no normalize needed.
  return out;
}

IntervalSet IntervalSet::clamped(double lo, double hi) const {
  SERELIN_REQUIRE(lo <= hi, "clamp window needs lo <= hi");
  SERELIN_COUNT(kElwIntervalOps, 1);
  IntervalSet out;
  for (const auto& iv : parts_) {
    const double a = std::max(iv.lo, lo);
    const double b = std::min(iv.hi, hi);
    if (a <= b) out.parts_.push_back({a, b});
  }
  return out;
}

void IntervalSet::normalize() {
  if (parts_.size() <= 1) return;
  std::sort(parts_.begin(), parts_.end(),
            [](const Interval& a, const Interval& b) {
              return a.lo < b.lo || (a.lo == b.lo && a.hi < b.hi);
            });
  std::vector<Interval> merged;
  merged.reserve(parts_.size());
  merged.push_back(parts_.front());
  for (std::size_t i = 1; i < parts_.size(); ++i) {
    const Interval& iv = parts_[i];
    if (iv.lo <= merged.back().hi) {
      // Overlapping or touching: coalesce.
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  parts_ = std::move(merged);
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& s) {
  if (s.empty()) return os << "{}";
  bool first = true;
  for (const auto& iv : s.parts()) {
    if (!first) os << " U ";
    first = false;
    os << '[' << iv.lo << ',' << iv.hi << ']';
  }
  return os;
}

}  // namespace serelin
