// IntervalSet: a union of disjoint closed real intervals.
//
// This is the carrier type for error-latching windows (ELWs). The paper's
// Eq. (2) writes the general ELW of a gate as
//     ELW_l(g) = [L1,R1] ∪ [L2,R2] ∪ ... ∪ [Ll,Rl]
// and Eq. (3) builds ELWs by backward traversal:
//     ELW(g) = [Φ−Ts, Φ+Th]                      if g drives a register or PO
//              ∪_{f ∈ fanout(g)} (ELW(f) − d(f)) otherwise,
// where "− d(f)" shifts every interval down by the fanout's delay. The size
// |ELW(g)| = Σ (Ri − Li) enters the SER formula Eq. (4) as |ELW(g)|/Φ.
//
// The set is kept sorted and coalesced: intervals are pairwise disjoint with
// non-touching neighbours, so measure() is exact and iteration order is
// ascending.
#pragma once

#include <iosfwd>
#include <vector>

namespace serelin {

/// One closed interval [lo, hi] with lo <= hi. A degenerate point interval
/// (lo == hi) is permitted and has measure zero.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double length() const { return hi - lo; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

class IntervalSet {
 public:
  /// The empty set.
  IntervalSet() = default;

  /// Singleton set {[lo, hi]}. Requires lo <= hi.
  IntervalSet(double lo, double hi);

  /// Builds from arbitrary (unsorted, possibly overlapping) intervals.
  explicit IntervalSet(std::vector<Interval> intervals);

  bool empty() const { return parts_.empty(); }

  /// Number of disjoint intervals ("l" in the paper's ELW_l notation).
  std::size_t size() const { return parts_.size(); }

  const std::vector<Interval>& parts() const { return parts_; }

  /// Total length Σ (Ri − Li) — the |ELW| of Eq. (4).
  double measure() const;

  /// Leftmost point L1. Requires non-empty.
  double left() const;

  /// Rightmost point Rl. Requires non-empty.
  double right() const;

  /// True iff `x` lies inside some interval (boundaries inclusive).
  bool contains(double x) const;

  /// Adds [lo, hi], merging with anything it overlaps or touches.
  void insert(double lo, double hi);

  /// In-place union with another set.
  void unite(const IntervalSet& other);

  /// Returns the set shifted by `delta` (the paper's "ELW(f) − d(f)" uses
  /// delta = −d(f)).
  IntervalSet shifted(double delta) const;

  /// Returns the intersection with [lo, hi].
  IntervalSet clamped(double lo, double hi) const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  void normalize();

  std::vector<Interval> parts_;  // sorted, disjoint, non-touching
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& s);

}  // namespace serelin
