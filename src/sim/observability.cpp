#include "sim/observability.hpp"

#include <algorithm>
#include <bit>
#include <memory>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace serelin {

namespace {

double popcount_fraction(std::span<const std::uint64_t> mask, int patterns) {
  std::int64_t ones = 0;
  for (std::uint64_t w : mask) ones += std::popcount(w);
  return static_cast<double>(ones) / patterns;
}

}  // namespace

ObservabilityAnalyzer::ObservabilityAnalyzer(const Netlist& nl, SimConfig cfg)
    : nl_(&nl), cfg_(cfg), words_(cfg.words()) {
  SERELIN_REQUIRE(cfg.frames > 0, "need at least one time frame");
}

void ObservabilityAnalyzer::record_run() {
  SERELIN_SPAN("obs/record");
  Rng rng(cfg_.seed);
  Simulator sim(*nl_, words_);
  sim.reset_state();
  sim.run_random_cycles(cfg_.warmup, rng);

  inputs_.assign(cfg_.frames, {});
  states_.assign(cfg_.frames, {});
  for (int f = 0; f < cfg_.frames; ++f) {
    auto& in = inputs_[f];
    in.reserve(nl_->inputs().size() * static_cast<std::size_t>(words_));
    sim.randomize_inputs(rng);
    for (NodeId pi : nl_->inputs()) {
      auto v = sim.value(pi);
      in.insert(in.end(), v.begin(), v.end());
    }
    states_[f].assign(sim.state_plane().begin(), sim.state_plane().end());
    sim.eval_frame();
    sim.step();
  }
}

ObsResult ObservabilityAnalyzer::run(Mode mode) {
  SERELIN_SPAN("obs/run");
  record_run();
  return mode == Mode::kSignature ? run_signature() : run_exact();
}

ObsResult ObservabilityAnalyzer::run_signature() {
  SERELIN_SPAN("obs/signature");
  const std::size_t n_nodes = nl_->node_count();
  const std::size_t plane = n_nodes * static_cast<std::size_t>(words_);
  Simulator sim(*nl_, words_);

  // Reverse evaluation order: gates in reverse topological order first,
  // then every source node (whose fanouts are all gates or cross-frame).
  std::vector<NodeId> reverse_order(nl_->gate_order().rbegin(),
                                    nl_->gate_order().rend());
  for (NodeId id = 0; id < n_nodes; ++id)
    if (!is_gate(nl_->node(id).type)) reverse_order.push_back(id);

  std::vector<std::uint64_t> odc(plane, 0);
  // ODC of each flip-flop node in frame i+1, indexed by dff position.
  std::vector<std::uint64_t> odc_next(
      nl_->dff_count() * static_cast<std::size_t>(words_), 0);
  std::vector<std::uint32_t> dff_index(n_nodes, 0);
  for (std::size_t i = 0; i < nl_->dffs().size(); ++i)
    dff_index[nl_->dffs()[i]] = static_cast<std::uint32_t>(i);

  // Per-worker fanin gather buffers for the word-block fan-out below.
  std::vector<std::vector<std::uint64_t>> gathers(
      static_cast<std::size_t>(parallel_workers()));
  ObsResult out;
  out.obs.assign(n_nodes, 0.0);

  for (int frame = cfg_.frames - 1; frame >= 0; --frame) {
    // Per-frame checkpoint: a partial ODC plane is not a valid
    // approximation, so an expired deadline aborts the whole analysis.
    cfg_.deadline.check("observability signature pass");
    // Re-evaluate frame `frame`.
    sim.load_state(states_[frame]);
    const auto& in = inputs_[frame];
    for (std::size_t p = 0; p < nl_->inputs().size(); ++p) {
      auto dst = sim.value(nl_->inputs()[p]);
      std::copy(in.begin() + static_cast<std::ptrdiff_t>(p * words_),
                in.begin() + static_cast<std::ptrdiff_t>((p + 1) * words_),
                dst.begin());
    }
    sim.eval_frame();

    const bool last_frame = (frame == cfg_.frames - 1);
    // The backward ODC pass is independent across pattern words: word w of
    // every ODC mask depends only on word w of the value plane and of the
    // already-computed fanout masks. Batch the words into blocks, one
    // parallel task per block — each task sweeps the whole reverse order
    // for its disjoint word columns, so any thread count produces the same
    // bits.
    const Simulator& csim = sim;
    parallel_for_chunks(
        0, static_cast<std::size_t>(words_), 1,
        [&](std::size_t w0, std::size_t w1, int lane) {
          auto& gather = gathers[static_cast<std::size_t>(lane)];
          for (NodeId v : reverse_order) {
            std::uint64_t* odc_v =
                odc.data() + static_cast<std::size_t>(v) * words_;
            const std::uint64_t seed_mask =
                nl_->is_output(v) ? ~0ULL : 0ULL;
            for (std::size_t w = w0; w < w1; ++w) odc_v[w] = seed_mask;
            for (NodeId f : nl_->node(v).fanouts) {
              const Node& fn = nl_->node(f);
              if (fn.type == CellType::kDff) {
                // Cross-frame: the register stores v, visible next frame
                // (or captured as a pseudo-output after the last frame).
                if (last_frame) {
                  for (std::size_t w = w0; w < w1; ++w) odc_v[w] = ~0ULL;
                } else {
                  const std::uint64_t* nx =
                      odc_next.data() +
                      static_cast<std::size_t>(dff_index[f]) * words_;
                  for (std::size_t w = w0; w < w1; ++w) odc_v[w] |= nx[w];
                }
                continue;
              }
              // Local sensitivity of fanout gate f to a flip of v, masked
              // by f's own ODC (already computed: f is topologically after
              // v).
              const std::uint64_t* odc_f =
                  odc.data() + static_cast<std::size_t>(f) * words_;
              gather.resize(fn.fanins.size());
              auto fv = csim.value(f);
              for (std::size_t w = w0; w < w1; ++w) {
                for (std::size_t k = 0; k < fn.fanins.size(); ++k) {
                  std::uint64_t word = csim.value(fn.fanins[k])[w];
                  if (fn.fanins[k] == v) word = ~word;
                  gather[k] = word;
                }
                const std::uint64_t flipped =
                    eval_cell(fn.type, {gather.data(), fn.fanins.size()});
                odc_v[w] |= (flipped ^ fv[w]) & odc_f[w];
              }
            }
          }
        });

    // Snapshot flip-flop ODCs for the next (earlier) frame's cross terms.
    for (std::size_t i = 0; i < nl_->dffs().size(); ++i) {
      const std::uint64_t* src =
          odc.data() + static_cast<std::size_t>(nl_->dffs()[i]) * words_;
      std::copy(src, src + words_,
                odc_next.begin() + static_cast<std::ptrdiff_t>(i * words_));
    }
  }

  for (NodeId v = 0; v < n_nodes; ++v)
    out.obs[v] = popcount_fraction(
        {odc.data() + static_cast<std::size_t>(v) * words_,
         static_cast<std::size_t>(words_)},
        cfg_.patterns);
  return out;
}

void ObservabilityAnalyzer::observables(NodeId flip, Simulator& sim,
                                        std::vector<std::uint64_t>& gather,
                                        std::vector<std::uint64_t>& out) const {
  sim.load_state(states_[0]);
  out.clear();
  for (int frame = 0; frame < cfg_.frames; ++frame) {
    const auto& in = inputs_[frame];
    for (std::size_t p = 0; p < nl_->inputs().size(); ++p) {
      auto dst = sim.value(nl_->inputs()[p]);
      std::copy(in.begin() + static_cast<std::ptrdiff_t>(p * words_),
                in.begin() + static_cast<std::ptrdiff_t>((p + 1) * words_),
                dst.begin());
    }
    if (frame == 0 && flip != kNullNode) {
      // Evaluate with the flip injected at `flip` and propagated: evaluate
      // normally, invert the node, then re-evaluate everything downstream.
      // Re-evaluating the whole frame after the inversion is simplest and
      // correct because gate evaluation is in topological order and the
      // inverted node is pinned.
      sim.eval_frame();
      auto fv = sim.value(flip);
      for (auto& w : fv) w = ~w;
      // Recompute gates downstream of flip (all gates; pin the flip).
      std::int64_t reevaluated = 0;
      for (NodeId id : nl_->gate_order()) {
        if (id == flip) continue;
        const Node& n = nl_->node(id);
        gather.resize(n.fanins.size());
        auto outw = sim.value(id);
        for (int w = 0; w < words_; ++w) {
          for (std::size_t k = 0; k < n.fanins.size(); ++k)
            gather[k] = sim.value(n.fanins[k])[w];
          outw[w] = eval_cell(n.type, {gather.data(), n.fanins.size()});
        }
        ++reevaluated;
      }
      SERELIN_COUNT(kSimPatternWords, reevaluated * words_);
    } else {
      sim.eval_frame();
    }
    for (NodeId po : nl_->outputs()) {
      auto v = sim.value(po);
      out.insert(out.end(), v.begin(), v.end());
    }
    sim.step();
  }
  const auto st = sim.state_plane();
  out.insert(out.end(), st.begin(), st.end());
}

ObsResult ObservabilityAnalyzer::run_exact() {
  SERELIN_SPAN("obs/exact");
  ObsResult out;
  out.obs.assign(nl_->node_count(), 0.0);

  std::vector<std::uint64_t> base;
  {
    Simulator sim(*nl_, words_);
    std::vector<std::uint64_t> gather;
    observables(kNullNode, sim, gather, base);
  }

  // One flip-and-resimulate run per node; runs are fully independent (each
  // owns its Simulator and writes only obs[v]), so the fan-out is
  // deterministic by construction.
  struct LaneScratch {
    std::unique_ptr<Simulator> sim;
    std::vector<std::uint64_t> plane;
    std::vector<std::uint64_t> gather;
    std::vector<std::uint64_t> diff;
  };
  std::vector<LaneScratch> lanes(
      static_cast<std::size_t>(parallel_workers()));
  // Deadline-aware guided fan-out: each lane polls before every
  // flip-resimulate and the CancelledError is rethrown on the caller.
  // Flip costs vary with each node's fanout cone, so static round-robin
  // chunking starves lanes that drew the cheap nodes; guided scheduling
  // lets idle lanes claim the (deterministically pre-cut) chunks instead.
  parallel_for_guided(0, nl_->node_count(), 1, cfg_.deadline,
                      "observability exact pass", [&](std::size_t v,
                                                      int lane) {
    LaneScratch& sc = lanes[static_cast<std::size_t>(lane)];
    if (!sc.sim) sc.sim = std::make_unique<Simulator>(*nl_, words_);
    SERELIN_COUNT(kObsFlips, 1);
    observables(static_cast<NodeId>(v), *sc.sim, sc.gather, sc.plane);
    SERELIN_ASSERT(sc.plane.size() == base.size(),
                   "observable plane mismatch");
    sc.diff.assign(static_cast<std::size_t>(words_), 0);
    for (std::size_t i = 0; i < base.size(); ++i)
      sc.diff[i % static_cast<std::size_t>(words_)] |= base[i] ^ sc.plane[i];
    out.obs[v] = popcount_fraction(sc.diff, cfg_.patterns);
  });
  return out;
}

}  // namespace serelin
