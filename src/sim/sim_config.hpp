// Configuration of signature-based logic simulation.
#pragma once

#include <cstdint>

#include "support/check.hpp"
#include "support/deadline.hpp"

namespace serelin {

struct SimConfig {
  /// Number of random patterns K (the paper's signal-sequence length).
  /// Must be a positive multiple of 64; the paper-scale experiments use
  /// 2048, tests often use smaller values.
  int patterns = 2048;

  /// Time-frame expansion depth n. The paper uses 15 frames "to reach the
  /// steady operational state".
  int frames = 15;

  /// Warm-up cycles simulated from the all-zero state (with random inputs)
  /// before the n analysed frames, so frame 0 starts from a typical state.
  int warmup = 30;

  /// Seed for input patterns and warm-up.
  std::uint64_t seed = 0x5e7e11a5ULL;

  /// Wall-clock / cancellation budget for the analysis. Observability
  /// masks are all-or-nothing (a partially-propagated ODC plane is not a
  /// usable approximation), so an expired deadline throws CancelledError
  /// rather than returning partial results.
  Deadline deadline;

  int words() const {
    SERELIN_REQUIRE(patterns > 0 && patterns % 64 == 0,
                    "patterns must be a positive multiple of 64");
    return patterns / 64;
  }
};

}  // namespace serelin
