// Graph-level sequential simulation with explicit per-edge register values,
// and the forward-retiming state transport that makes retimings *provably*
// functionally equivalent.
//
// A retiming graph + retiming r + a value for every register on every edge
// is a complete sequential machine: cycle() evaluates every vertex (gates
// combinationally, sources from caller-provided stimuli) and then shifts
// every edge's register queue. Running the original circuit (r = 0, given
// initial register values) and a forward-retimed circuit (r' <= r, register
// values transported by decompose_forward) on the same input stream yields
// identical primary-output streams cycle for cycle — the equivalence
// property the test suite checks for every optimizer result.
//
// decompose_forward realizes a forward retiming as a sequence of elementary
// moves. One elementary move across gate v removes the register nearest v
// from every in-edge and places a register nearest v on every out-edge,
// whose initial value is v evaluated on the removed registers' values (the
// classical forward-retiming initial-state rule). A schedule of elementary
// moves always exists for valid r' <= r because a blocked dependency chain
// would exhibit either a register-free cycle (impossible: cycle weights are
// retiming-invariant and positive) or an immovable boundary vertex with a
// pending move (excluded by validity).
#pragma once

#include <deque>
#include <vector>

#include "rgraph/retiming_graph.hpp"
#include "support/rng.hpp"

namespace serelin {

/// Register values per edge. queue.front() is the register nearest the
/// consumer (next value the consumer reads); queue.back() is nearest the
/// producer. Each register holds `words` 64-bit pattern words.
using EdgeState = std::vector<std::deque<std::vector<std::uint64_t>>>;

/// All-zero register state matching w_r(e) registers per edge.
EdgeState zero_edge_state(const RetimingGraph& g, const Retiming& r,
                          int words);

class GraphStateSimulator {
 public:
  /// Requires g.valid(r) and state sized per w_r.
  GraphStateSimulator(const RetimingGraph& g, const Retiming& r,
                      EdgeState state, int words);

  /// Sets the value words of a source vertex (primary input) for the
  /// upcoming cycle.
  void set_source(VertexId v, std::vector<std::uint64_t> words);

  /// Fills every primary-input source with random words.
  void randomize_sources(Rng& rng);

  /// Evaluates one cycle and shifts the registers.
  void cycle();

  /// Output value of vertex `v` from the last cycle().
  const std::vector<std::uint64_t>& value(VertexId v) const {
    return values_[v];
  }

  /// Concatenated sink (primary output) values from the last cycle(), in
  /// sink vertex order — the comparison key for equivalence checks.
  std::vector<std::uint64_t> sink_values() const;

  const EdgeState& state() const { return state_; }

 private:
  const RetimingGraph* g_;
  Retiming r_;
  EdgeState state_;
  int words_;
  std::vector<std::vector<std::uint64_t>> values_;
  std::vector<VertexId> topo_;  // topological order of the w_r=0 subgraph
};

/// Transports register values from (g, r_from, state) to the equivalent
/// state of (g, r_to), where r_to <= r_from on movable vertices and both
/// retimings are valid. Throws AssertionError if no elementary-move
/// schedule exists (indicates an invalid retiming pair).
EdgeState decompose_forward(const RetimingGraph& g, const Retiming& r_from,
                            const Retiming& r_to, const EdgeState& state,
                            int words);

}  // namespace serelin
