// Word-parallel functional simulation of a sequential netlist.
//
// Values are bit-vectors of K patterns packed 64 per word: signature
// simulation in the sense of Krishnaswamy et al. [11,21]. One Simulator
// instance owns the value plane (node_count × words uint64) and a register
// state plane (dff_count × words).
//
// A *frame* evaluates the one-cycle combinational network: flip-flop nodes
// take their stored state, primary inputs take caller-provided (usually
// random) words, gates evaluate in topological order. step() then captures
// every flip-flop's D-driver value as the next state.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/sim_config.hpp"
#include "support/rng.hpp"

namespace serelin {

class Simulator {
 public:
  Simulator(const Netlist& nl, int words);

  const Netlist& netlist() const { return *nl_; }
  int words() const { return words_; }

  /// Mutable view of the value words of `node` (valid after eval_frame for
  /// non-source nodes; inputs/states are set by the caller / frame logic).
  std::span<std::uint64_t> value(NodeId node) {
    return {values_.data() + static_cast<std::size_t>(node) * words_,
            static_cast<std::size_t>(words_)};
  }
  std::span<const std::uint64_t> value(NodeId node) const {
    return {values_.data() + static_cast<std::size_t>(node) * words_,
            static_cast<std::size_t>(words_)};
  }

  /// Current register state of the i-th flip-flop (order of netlist.dffs()).
  std::span<std::uint64_t> state(std::size_t dff_index) {
    return {state_.data() + dff_index * words_,
            static_cast<std::size_t>(words_)};
  }
  std::span<const std::uint64_t> state(std::size_t dff_index) const {
    return {state_.data() + dff_index * words_,
            static_cast<std::size_t>(words_)};
  }

  /// Sets every register word to zero (power-on state).
  void reset_state();

  /// Overwrites the whole state plane (size dff_count*words).
  void load_state(std::span<const std::uint64_t> state);
  std::span<const std::uint64_t> state_plane() const { return state_; }

  /// Fills every primary-input word with fresh random bits from `rng`.
  void randomize_inputs(Rng& rng);

  /// Evaluates one combinational frame from the current inputs and state:
  /// flip-flop node values := stored state, then gates in topological order.
  void eval_frame();

  /// Latches D-driver values into the register state (the clock edge).
  void step();

  /// Convenience: `cycles` frames of (randomize, eval, step).
  void run_random_cycles(int cycles, Rng& rng);

 private:
  const Netlist* nl_;
  int words_;
  std::vector<std::uint64_t> values_;  // node plane
  std::vector<std::uint64_t> state_;   // dff plane
  std::vector<std::uint64_t> scratch_; // fanin gather buffer
};

}  // namespace serelin
