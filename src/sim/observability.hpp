// Signal observability analysis with n-time-frame expansion.
//
// Observability of a node g (paper §II-A/B) is
//     obs(g) = num_ones(O(g)) / K
// where O(g) is the observability-don't-care (ODC) mask of g over K random
// patterns: the set of patterns in which flipping g's value changes some
// observable output. Observables of the n-frame expanded circuit are every
// primary output of every frame plus the register contents after the last
// frame; a flip is injected at frame 0, so obs(g) measures how often an SEU
// at g in a typical cycle is ever seen by the environment within n cycles —
// the time-frame-expansion scheme of Krishnaswamy et al. [17].
//
// Two computation modes:
//   kSignature — backward ODC-mask propagation (the method of [11,21]):
//       O(g) = [g is PO]·1 | OR_f sens(g→f) & O(f) | cross-frame terms,
//       where sens(g→f) is the local flip-propagation mask of fanout f.
//       Linear in circuit size per frame; exact on fanout-free circuits,
//       first-order (ignores reconvergent flip interactions) otherwise.
//   kExact — flip-and-resimulate: per node, rerun all n frames with the
//       node inverted in frame 0 and compare observables. Quadratic; used
//       as ground truth in tests and available for small circuits.
//
// Flip-flop nodes get an observability too (the visibility of an upset of
// their stored bit); the paper's register-observability model obs(reg) =
// obs(driving gate) is what the retiming objective uses, while the values
// computed here feed the reference SER analysis.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "sim/sim_config.hpp"
#include "sim/simulator.hpp"

namespace serelin {

struct ObsResult {
  /// Per-node observability in [0,1], indexed by NodeId.
  std::vector<double> obs;
};

class ObservabilityAnalyzer {
 public:
  enum class Mode { kSignature, kExact };

  ObservabilityAnalyzer(const Netlist& nl, SimConfig cfg);

  /// Runs warm-up + n-frame analysis. Deterministic for a fixed config.
  ObsResult run(Mode mode = Mode::kSignature);

 private:
  ObsResult run_signature();
  ObsResult run_exact();

  /// Simulates frames 0..frames-1 from the stored frame-0 state/inputs,
  /// optionally flipping `flip` in frame 0, and fills `out` with the
  /// concatenated observable words (POs of each frame, then the final
  /// register plane). `sim` and `gather` are caller-owned scratch so the
  /// exact mode can run one resimulation per flip node in parallel with
  /// per-worker buffers; const and thread-safe for distinct scratch.
  void observables(NodeId flip, Simulator& sim,
                   std::vector<std::uint64_t>& gather,
                   std::vector<std::uint64_t>& out) const;

  void record_run();  // warm-up, then store per-frame inputs and states

  const Netlist* nl_;
  SimConfig cfg_;
  int words_;
  // Stored per-frame stimuli/state so backward passes can re-evaluate any
  // frame: inputs_[f] is |PI|*words, states_[f] is |DFF|*words.
  std::vector<std::vector<std::uint64_t>> inputs_;
  std::vector<std::vector<std::uint64_t>> states_;
};

}  // namespace serelin
