#include "sim/simulator.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/metrics.hpp"

namespace serelin {

Simulator::Simulator(const Netlist& nl, int words) : nl_(&nl), words_(words) {
  SERELIN_REQUIRE(nl.finalized(), "Simulator needs a finalized netlist");
  SERELIN_REQUIRE(words > 0, "need at least one simulation word");
  values_.assign(nl.node_count() * static_cast<std::size_t>(words), 0);
  state_.assign(nl.dff_count() * static_cast<std::size_t>(words), 0);
  std::size_t max_arity = 1;
  for (NodeId id = 0; id < nl.node_count(); ++id)
    max_arity = std::max(max_arity, nl.node(id).fanins.size());
  scratch_.assign(max_arity, 0);
}

void Simulator::reset_state() {
  std::fill(state_.begin(), state_.end(), 0);
}

void Simulator::load_state(std::span<const std::uint64_t> state) {
  SERELIN_REQUIRE(state.size() == state_.size(),
                  "state plane size mismatch");
  std::copy(state.begin(), state.end(), state_.begin());
}

void Simulator::randomize_inputs(Rng& rng) {
  for (NodeId id : nl_->inputs()) {
    auto v = value(id);
    for (auto& w : v) w = rng.next();
  }
}

void Simulator::eval_frame() {
  // Sources: flip-flops read their state; constants are rewritten each
  // frame (cheap and keeps the plane consistent after load_state).
  const auto& dffs = nl_->dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    auto dst = value(dffs[i]);
    auto src = state(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  for (NodeId id = 0; id < nl_->node_count(); ++id) {
    const CellType t = nl_->node(id).type;
    if (t == CellType::kConst0) {
      auto v = value(id);
      std::fill(v.begin(), v.end(), 0ULL);
    } else if (t == CellType::kConst1) {
      auto v = value(id);
      std::fill(v.begin(), v.end(), ~0ULL);
    }
  }
  // Gates in topological order.
  for (NodeId id : nl_->gate_order()) {
    const Node& n = nl_->node(id);
    auto out = value(id);
    for (int w = 0; w < words_; ++w) {
      for (std::size_t f = 0; f < n.fanins.size(); ++f)
        scratch_[f] = values_[static_cast<std::size_t>(n.fanins[f]) * words_ + w];
      out[w] = eval_cell(n.type, {scratch_.data(), n.fanins.size()});
    }
  }
  SERELIN_COUNT(kSimPatternWords,
                static_cast<std::int64_t>(nl_->gate_order().size()) * words_);
}

void Simulator::step() {
  const auto& dffs = nl_->dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const NodeId driver = nl_->node(dffs[i]).fanins[0];
    auto src = value(driver);
    auto dst = state(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
}

void Simulator::run_random_cycles(int cycles, Rng& rng) {
  for (int c = 0; c < cycles; ++c) {
    randomize_inputs(rng);
    eval_frame();
    step();
  }
}

}  // namespace serelin
