#include "sim/graph_sim.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace serelin {

namespace {

std::vector<VertexId> topo_zero_weight(const RetimingGraph& g,
                                       const Retiming& r) {
  std::vector<std::uint32_t> pending(g.vertex_count(), 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    if (g.wr(e, r) == 0) ++pending[g.edge(e).to];
  std::vector<VertexId> ready, order;
  order.reserve(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v)
    if (pending[v] == 0) ready.push_back(v);
  while (!ready.empty()) {
    const VertexId v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (EdgeId eid : g.out_edges(v))
      if (g.wr(eid, r) == 0 && --pending[g.edge(eid).to] == 0)
        ready.push_back(g.edge(eid).to);
  }
  SERELIN_ASSERT(order.size() == g.vertex_count(),
                 "retimed graph has a register-free cycle");
  return order;
}

}  // namespace

EdgeState zero_edge_state(const RetimingGraph& g, const Retiming& r,
                          int words) {
  EdgeState state(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const std::int32_t w = g.wr(e, r);
    SERELIN_REQUIRE(w >= 0, "invalid retiming");
    for (std::int32_t k = 0; k < w; ++k)
      state[e].emplace_back(static_cast<std::size_t>(words), 0ULL);
  }
  return state;
}

GraphStateSimulator::GraphStateSimulator(const RetimingGraph& g,
                                         const Retiming& r, EdgeState state,
                                         int words)
    : g_(&g), r_(r), state_(std::move(state)), words_(words) {
  SERELIN_REQUIRE(g.valid(r), "GraphStateSimulator needs a valid retiming");
  SERELIN_REQUIRE(state_.size() == g.edge_count(), "state arity mismatch");
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    SERELIN_REQUIRE(static_cast<std::int32_t>(state_[e].size()) == g.wr(e, r),
                    "edge register count mismatch");
  values_.assign(g.vertex_count(),
                 std::vector<std::uint64_t>(static_cast<std::size_t>(words), 0));
  topo_ = topo_zero_weight(g, r);
}

void GraphStateSimulator::set_source(VertexId v,
                                     std::vector<std::uint64_t> words) {
  SERELIN_REQUIRE(g_->vertex(v).kind == VertexKind::kSource,
                  "set_source target must be a source vertex");
  SERELIN_REQUIRE(words.size() == static_cast<std::size_t>(words_),
                  "word count mismatch");
  values_[v] = std::move(words);
}

void GraphStateSimulator::randomize_sources(Rng& rng) {
  for (VertexId v = 0; v < g_->vertex_count(); ++v) {
    const RVertex& vx = g_->vertex(v);
    if (vx.kind != VertexKind::kSource) continue;
    if (g_->netlist().node(vx.node).type != CellType::kInput) continue;
    for (auto& w : values_[v]) w = rng.next();
  }
}

void GraphStateSimulator::cycle() {
  const Netlist& nl = g_->netlist();
  std::vector<std::uint64_t> gather;
  for (VertexId v : topo_) {
    const RVertex& vx = g_->vertex(v);
    switch (vx.kind) {
      case VertexKind::kSource: {
        const CellType t = nl.node(vx.node).type;
        if (t == CellType::kConst0)
          std::fill(values_[v].begin(), values_[v].end(), 0ULL);
        else if (t == CellType::kConst1)
          std::fill(values_[v].begin(), values_[v].end(), ~0ULL);
        // kInput: value provided via set_source / randomize_sources.
        break;
      }
      case VertexKind::kSink: {
        SERELIN_ASSERT(g_->in_edges(v).size() == 1, "sink has one driver");
        const EdgeId eid = g_->in_edges(v).front();
        const REdge& e = g_->edge(eid);
        values_[v] = state_[eid].empty() ? values_[e.from]
                                         : state_[eid].front();
        break;
      }
      case VertexKind::kGate: {
        const Node& n = nl.node(vx.node);
        const auto& ins = g_->in_edges(v);
        SERELIN_ASSERT(ins.size() == n.fanins.size(),
                       "pin count mismatch in graph simulation");
        gather.resize(ins.size());
        auto& out = values_[v];
        for (int w = 0; w < words_; ++w) {
          for (std::size_t k = 0; k < ins.size(); ++k) {
            const EdgeId eid = ins[k];
            gather[k] = state_[eid].empty()
                            ? values_[g_->edge(eid).from][static_cast<std::size_t>(w)]
                            : state_[eid].front()[static_cast<std::size_t>(w)];
          }
          out[static_cast<std::size_t>(w)] =
              eval_cell(n.type, {gather.data(), gather.size()});
        }
        break;
      }
    }
  }
  // Clock edge: shift every register queue.
  for (EdgeId e = 0; e < g_->edge_count(); ++e) {
    if (state_[e].empty()) continue;
    state_[e].pop_front();
    state_[e].push_back(values_[g_->edge(e).from]);
  }
}

std::vector<std::uint64_t> GraphStateSimulator::sink_values() const {
  std::vector<std::uint64_t> out;
  for (VertexId v = 0; v < g_->vertex_count(); ++v)
    if (g_->vertex(v).kind == VertexKind::kSink)
      out.insert(out.end(), values_[v].begin(), values_[v].end());
  return out;
}

EdgeState decompose_forward(const RetimingGraph& g, const Retiming& r_from,
                            const Retiming& r_to, const EdgeState& state,
                            int words) {
  SERELIN_REQUIRE(g.valid(r_from) && g.valid(r_to),
                  "decompose_forward needs valid retimings");
  const Netlist& nl = g.netlist();
  EdgeState cur = state;
  Retiming rc = r_from;
  std::vector<std::int64_t> remaining(g.vertex_count(), 0);
  std::int64_t total = 0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    SERELIN_REQUIRE(g.movable(v) || r_from[v] == r_to[v],
                    "boundary labels must agree");
    SERELIN_REQUIRE(r_to[v] <= r_from[v],
                    "decompose_forward handles forward (decreasing) moves");
    remaining[v] = r_from[v] - r_to[v];
    total += remaining[v];
  }

  std::vector<std::uint64_t> gather;
  while (total > 0) {
    bool progressed = false;
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      if (remaining[v] == 0) continue;
      // The move is legal when every in-edge currently carries a register.
      bool legal = true;
      for (EdgeId eid : g.in_edges(v))
        if (cur[eid].empty()) {
          legal = false;
          break;
        }
      if (!legal) continue;

      // Remove the register nearest v from each in-edge; evaluate v on the
      // removed values; add a register nearest v on each out-edge.
      const Node& n = nl.node(g.vertex(v).node);
      const auto& ins = g.in_edges(v);
      gather.resize(ins.size());
      std::vector<std::uint64_t> new_init(static_cast<std::size_t>(words), 0);
      for (int w = 0; w < words; ++w) {
        for (std::size_t k = 0; k < ins.size(); ++k)
          gather[k] = cur[ins[k]].front()[static_cast<std::size_t>(w)];
        new_init[static_cast<std::size_t>(w)] =
            eval_cell(n.type, {gather.data(), gather.size()});
      }
      for (EdgeId eid : ins) cur[eid].pop_front();
      for (EdgeId eid : g.out_edges(v)) cur[eid].push_back(new_init);

      --remaining[v];
      --rc[v];
      --total;
      progressed = true;
    }
    SERELIN_ASSERT(progressed,
                   "no elementary move available: retiming pair is invalid");
  }
  return cur;
}

}  // namespace serelin
