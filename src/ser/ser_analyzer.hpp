// Circuit soft-error-rate analysis: the paper's Eq. (4).
//
//   SER(C_S, n) =   Σ_{g ∈ Comb} obs(g,n) · err(g) · |ELW(g)|/Φ
//                 + Σ_{r ∈ Reg}  obs(r,n) · err(r) · |ELW(r)|/Φ
//
// obs comes from n-time-frame signature simulation (src/sim), err from the
// cell library characterization, and ELW from the exact interval
// computation (src/timing/elw). With timing masking disabled the ELW factor
// is dropped, which recovers the logic-masking-only SER of [17] (the model
// the MinObs baseline optimizes).
//
// This analyzer is the *evaluation* path of the reproduction: the paper
// evaluates every retimed circuit with "the real size of the ELW for each
// gate with (3)", i.e. exactly this computation on the materialized
// netlist.
#pragma once

#include <vector>

#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "sim/observability.hpp"
#include "timing/elw.hpp"
#include "timing/params.hpp"

namespace serelin {

struct SerOptions {
  TimingParams timing;
  SimConfig sim;
  /// Apply the |ELW|/Φ timing-masking factor of Eq. (4). When false the
  /// analysis reduces to the logic-masking-only model of [17].
  bool timing_masking = true;
  ObservabilityAnalyzer::Mode obs_mode = ObservabilityAnalyzer::Mode::kSignature;
};

struct SerReport {
  double total = 0.0;       ///< SER(C_S, n)
  double combinational = 0.0;  ///< gate term of Eq. (4)
  double sequential = 0.0;     ///< register term of Eq. (4)
  std::vector<double> contribution;  ///< per-node SER share (NodeId-indexed)
  std::vector<double> obs;           ///< per-node observability
  ElwResult elw;                     ///< per-node error-latching windows
};

/// Analyzes a finalized netlist. Deterministic for fixed options.
SerReport analyze_ser(const Netlist& nl, const CellLibrary& lib,
                      const SerOptions& options);

}  // namespace serelin
