#include "ser/ser_analyzer.hpp"

#include "support/check.hpp"

namespace serelin {

SerReport analyze_ser(const Netlist& nl, const CellLibrary& lib,
                      const SerOptions& options) {
  SERELIN_REQUIRE(options.timing.period > 0.0,
                  "SER analysis needs a positive clock period");
  SerReport report;

  ObservabilityAnalyzer obs_engine(nl, options.sim);
  report.obs = obs_engine.run(options.obs_mode).obs;
  report.elw = compute_elw(nl, lib, options.timing);
  report.contribution.assign(nl.node_count(), 0.0);

  const double phi = options.timing.period;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    const bool comb = is_gate(n.type);
    const bool seq = n.type == CellType::kDff;
    if (!comb && !seq) continue;
    const double err = lib.err(n.type);
    const double window =
        options.timing_masking ? report.elw.measure(id, phi) / phi : 1.0;
    const double c = report.obs[id] * err * window;
    report.contribution[id] = c;
    if (comb)
      report.combinational += c;
    else
      report.sequential += c;
  }
  report.total = report.combinational + report.sequential;
  return report;
}

}  // namespace serelin
