#include "ser/ser_analyzer.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace serelin {

SerReport analyze_ser(const Netlist& nl, const CellLibrary& lib,
                      const SerOptions& options) {
  SERELIN_SPAN("ser/analyze");
  SERELIN_REQUIRE(options.timing.period > 0.0,
                  "SER analysis needs a positive clock period");
  SerReport report;

  ObservabilityAnalyzer obs_engine(nl, options.sim);
  report.obs = obs_engine.run(options.obs_mode).obs;
  report.elw = compute_elw(nl, lib, options.timing);
  report.contribution.assign(nl.node_count(), 0.0);

  // Per-gate terms of Eq. (4) are independent: each iteration writes only
  // contribution[id]. The comb/seq reduction happens afterwards in fixed
  // NodeId order so the floating-point sums are bit-identical for any
  // thread count.
  const double phi = options.timing.period;
  const std::size_t grain = std::max<std::size_t>(
      64, nl.node_count() / (static_cast<std::size_t>(parallel_workers()) *
                             8));
  parallel_for(0, nl.node_count(), grain, [&](std::size_t idx, int) {
    const NodeId id = static_cast<NodeId>(idx);
    const Node& n = nl.node(id);
    if (!is_gate(n.type) && n.type != CellType::kDff) return;
    SERELIN_COUNT(kSerTerms, 1);
    const double err = lib.err(n.type);
    const double window =
        options.timing_masking ? report.elw.measure(id, phi) / phi : 1.0;
    report.contribution[id] = report.obs[id] * err * window;
  });
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    if (is_gate(n.type))
      report.combinational += report.contribution[id];
    else if (n.type == CellType::kDff)
      report.sequential += report.contribution[id];
  }
  report.total = report.combinational + report.sequential;
  return report;
}

}  // namespace serelin
