#include "check/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "rgraph/apply.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"
#include "timing/elw.hpp"

namespace serelin {

namespace {

// Forward STA over the one-cycle combinational network: arrival time at
// every node's *output*, with sources (PIs, register Qs, constants)
// launching at 0. Independent of GraphTiming on purpose.
std::vector<double> forward_arrivals(const Netlist& nl,
                                     const CellLibrary& lib) {
  std::vector<double> arrival(nl.node_count(), 0.0);
  for (NodeId id : nl.gate_order()) {
    const Node& n = nl.node(id);
    double in = 0.0;
    for (NodeId f : n.fanins) in = std::max(in, arrival[f]);
    arrival[id] = in + lib.delay(n.type);
  }
  return arrival;
}

std::string fmt(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", x);
  return buf;
}

InvariantResult skipped(Invariant id, std::string why) {
  return {id, CheckStatus::kSkipped, std::move(why)};
}

}  // namespace

const char* invariant_name(Invariant id) {
  switch (id) {
    case Invariant::kLegality:
      return "legality";
    case Invariant::kPeriod:
      return "period";
    case Invariant::kElw:
      return "elw";
    case Invariant::kObjective:
      return "objective";
  }
  return "legality";
}

const char* check_status_name(CheckStatus s) {
  switch (s) {
    case CheckStatus::kPass:
      return "pass";
    case CheckStatus::kFail:
      return "fail";
    case CheckStatus::kSkipped:
      return "skipped";
  }
  return "skipped";
}

bool Verdict::ok() const {
  return std::none_of(invariants.begin(), invariants.end(),
                      [](const InvariantResult& r) {
                        return r.status == CheckStatus::kFail;
                      });
}

const InvariantResult& Verdict::result(Invariant id) const {
  for (const InvariantResult& r : invariants)
    if (r.invariant == id) return r;
  SERELIN_ASSERT(false, "Verdict is missing an invariant entry");
  std::abort();  // unreachable; SERELIN_ASSERT throws
}

std::string Verdict::summary() const {
  std::string out = ok() ? "verified: " : "REJECTED: ";
  bool first = true;
  for (const InvariantResult& r : invariants) {
    if (!first) out += ", ";
    first = false;
    out += invariant_name(r.invariant);
    out += ' ';
    out += r.status == CheckStatus::kFail ? "FAIL"
                                          : check_status_name(r.status);
  }
  return out;
}

double critical_path(const Netlist& nl, const CellLibrary& lib) {
  SERELIN_REQUIRE(nl.finalized(), "critical_path: netlist not finalized");
  const std::vector<double> arrival = forward_arrivals(nl, lib);
  double worst = 0.0;
  for (NodeId ff : nl.dffs()) worst = std::max(worst, arrival[nl.node(ff).fanins[0]]);
  for (NodeId po : nl.outputs()) worst = std::max(worst, arrival[po]);
  return worst;
}

RetimingOracle::RetimingOracle(const RetimingGraph& g, OracleOptions options)
    : g_(&g), opt_(options) {}

InvariantResult RetimingOracle::check_legality(const Retiming& r,
                                               Verdict& v) const {
  SERELIN_COUNT(kOracleChecks, 1);
  SERELIN_REQUIRE(r.size() == g_->vertex_count(),
                  "oracle: retiming size does not match the graph");
  // Boundary labels first: a moved boundary vertex is a different circuit,
  // not a retiming (the classical host vertex is pinned).
  std::size_t moved_boundary = 0;
  for (VertexId p = 0; p < g_->vertex_count(); ++p) {
    if (g_->movable(p) || r[p] == 0) continue;
    ++moved_boundary;
    v.diagnostics.report(
        {Severity::kError, DiagCode::kOracleLegality, {}, 0, 0,
         "boundary vertex " + std::to_string(p) + " carries r = " +
             std::to_string(r[p]) + " (must stay 0)"});
  }
  // Edge scan: w_r(u,v) = w + r(v) − r(u) ≥ 0 on every edge (paper Eq. 1).
  // Each lane reports into its own slot; the merge orders findings by edge
  // id, so the verdict is bit-identical for any thread count.
  LaneDiagnostics lanes(parallel_workers(), opt_.max_diagnostics);
  parallel_for(
      0, g_->edge_count(), 4096, opt_.deadline, "oracle/legality",
      [&](std::size_t i, int lane) {
        const EdgeId eid = static_cast<EdgeId>(i);
        const REdge& e = g_->edge(eid);
        const std::int64_t wr = static_cast<std::int64_t>(e.w) +
                                r[e.to] - r[e.from];
        if (wr >= 0) return;
        lanes.error(lane, i, DiagCode::kOracleLegality,
                    "edge " + std::to_string(eid) + " (" +
                        std::to_string(e.from) + " -> " +
                        std::to_string(e.to) + "): w_r = " +
                        std::to_string(wr) + " < 0 (w = " +
                        std::to_string(e.w) + ", r(u) = " +
                        std::to_string(r[e.from]) + ", r(v) = " +
                        std::to_string(r[e.to]) + ")");
      });
  const std::size_t negative = lanes.error_count();
  lanes.merge_into(v.diagnostics);
  if (moved_boundary == 0 && negative == 0)
    return {Invariant::kLegality, CheckStatus::kPass,
            std::to_string(g_->edge_count()) + " edges with w_r >= 0"};
  return {Invariant::kLegality, CheckStatus::kFail,
          std::to_string(negative) + " negative edge(s), " +
              std::to_string(moved_boundary) + " moved boundary label(s)"};
}

InvariantResult RetimingOracle::check_period(const Netlist& retimed,
                                             Verdict& v) const {
  SERELIN_COUNT(kOracleChecks, 1);
  const double budget = opt_.timing.window_lo();
  const std::vector<double> arrival =
      forward_arrivals(retimed, g_->library());
  std::size_t late = 0;
  double worst = 0.0;
  auto check_endpoint = [&](NodeId at, const std::string& what) {
    worst = std::max(worst, arrival[at]);
    if (arrival[at] <= budget + opt_.eps) return;
    ++late;
    if (v.diagnostics.count(DiagCode::kOraclePeriod) < opt_.max_diagnostics)
      v.diagnostics.report(
          {Severity::kError, DiagCode::kOraclePeriod, {}, 0, 0,
           what + ": arrival " + fmt(arrival[at]) + " exceeds phi - Ts = " +
               fmt(budget)});
  };
  for (NodeId ff : retimed.dffs())
    check_endpoint(retimed.node(ff).fanins[0],
                   "register " + retimed.node(ff).name + " D input");
  for (NodeId po : retimed.outputs())
    check_endpoint(po, "primary output " + retimed.node(po).name);
  opt_.deadline.check("oracle/period");
  if (late == 0)
    return {Invariant::kPeriod, CheckStatus::kPass,
            "critical path " + fmt(worst) + " <= " + fmt(budget)};
  return {Invariant::kPeriod, CheckStatus::kFail,
          std::to_string(late) + " late endpoint(s), critical path " +
              fmt(worst) + " > " + fmt(budget)};
}

InvariantResult RetimingOracle::check_elw(const Netlist& retimed,
                                          Verdict& v) const {
  if (!opt_.check_elw)
    return skipped(Invariant::kElw, "not requested for this result");
  if (opt_.rmin <= 0.0)
    return skipped(Invariant::kElw, "R_min <= 0 (constraint vacuous)");
  SERELIN_COUNT(kOracleChecks, 1);
  // Recompute exact windows on the materialized netlist (paper Eq. 3) and
  // check every register-to-logic path: a register on ff feeding gate f
  // latches glitches until right(ELW(f)) − d(f); Theorem 1 equates that
  // with Φ + Th − (shortest downstream path), so the P2' bound
  // "short path ≥ R_min" reads right(ELW(f)) − d(f) ≤ Φ + Th − R_min.
  const CellLibrary& lib = g_->library();
  const ElwResult elw = compute_elw(retimed, lib, opt_.timing);
  const double bound = opt_.timing.window_hi() - opt_.rmin;
  std::size_t violations = 0;
  std::size_t checked = 0;
  auto report = [&](const std::string& msg) {
    ++violations;
    if (v.diagnostics.count(DiagCode::kOracleElw) < opt_.max_diagnostics)
      v.diagnostics.report(
          {Severity::kError, DiagCode::kOracleElw, {}, 0, 0, msg});
  };
  for (NodeId ff : retimed.dffs()) {
    opt_.deadline.check("oracle/elw");
    const Node& reg = retimed.node(ff);
    if (retimed.is_output(ff)) {
      // Register delivered straight to a primary output: the short path is
      // empty, nothing can absorb a glitch (the checker's sink case).
      report("register " + reg.name +
             " taps a primary output: short path 0 < R_min = " +
             fmt(opt_.rmin));
    }
    for (NodeId fo : reg.fanouts) {
      const Node& f = retimed.node(fo);
      // Chain registers (DFF -> DFF) are the edge-weight representation of
      // one multi-register edge; P2' constrains the edge's head gate only.
      if (!is_gate(f.type)) continue;
      if (elw.elw[fo].empty()) continue;  // dangling cone: nothing latches
      ++checked;
      const double latest = elw.elw[fo].right() - lib.delay(f.type);
      if (latest <= bound + opt_.eps) continue;
      report("register " + reg.name + " -> gate " + f.name +
             ": glitches latch until " + fmt(latest) +
             " > phi + Th - R_min = " + fmt(bound) + " (short path " +
             fmt(opt_.timing.window_hi() - latest) + " < " +
             fmt(opt_.rmin) + ")");
    }
  }
  if (violations == 0)
    return {Invariant::kElw, CheckStatus::kPass,
            std::to_string(checked) + " register-to-logic window(s) within "
                                      "R_min = " +
                fmt(opt_.rmin)};
  return {Invariant::kElw, CheckStatus::kFail,
          std::to_string(violations) + " window violation(s) of R_min = " +
              fmt(opt_.rmin)};
}

InvariantResult RetimingOracle::check_objective(const SolverResult& result,
                                                const Retiming& initial,
                                                const ObsGains& gains,
                                                Verdict& v) const {
  SERELIN_COUNT(kOracleChecks, 1);
  SERELIN_REQUIRE(initial.size() == g_->vertex_count() &&
                      gains.vertex_obs.size() == g_->vertex_count(),
                  "oracle: initial/gains size does not match the graph");
  // Two direct Eq. (5) evaluations; the §VII area term mirrors
  // compute_gains' integer scaling exactly, so the comparison is exact.
  const std::int64_t area_scale =
      std::llround(opt_.area_weight * gains.patterns);
  auto total = [&](const Retiming& r) {
    std::int64_t sum = 0;
    for (EdgeId eid = 0; eid < g_->edge_count(); ++eid) {
      const REdge& e = g_->edge(eid);
      const std::int64_t wr =
          static_cast<std::int64_t>(e.w) + r[e.to] - r[e.from];
      sum += gains.vertex_obs[e.from] * wr + area_scale * wr;
    }
    return sum;
  };
  const std::int64_t recomputed = total(initial) - total(result.r);
  opt_.deadline.check("oracle/objective");
  if (recomputed == result.objective_gain)
    return {Invariant::kObjective, CheckStatus::kPass,
            "reported gain " + std::to_string(result.objective_gain) +
                " matches Eq. (5) recomputation"};
  v.diagnostics.report(
      {Severity::kError, DiagCode::kOracleObjective, {}, 0, 0,
       "reported objective gain " + std::to_string(result.objective_gain) +
           " but Eq. (5) recomputation gives " + std::to_string(recomputed)});
  return {Invariant::kObjective, CheckStatus::kFail,
          "reported " + std::to_string(result.objective_gain) +
              " != recomputed " + std::to_string(recomputed)};
}

Verdict RetimingOracle::verify(const Retiming& r) const {
  SERELIN_SPAN("oracle/verify");
  Verdict v;
  v.invariants.reserve(4);
  v.invariants.push_back(check_legality(r, v));
  if (v.invariants.back().status == CheckStatus::kPass) {
    // Materialize once; both structural checks run on the rebuilt netlist,
    // not on solver-side timing labels.
    const Netlist retimed =
        apply_retiming(*g_, r, g_->netlist().name() + "_oracle");
    v.invariants.push_back(check_period(retimed, v));
    v.invariants.push_back(check_elw(retimed, v));
  } else {
    v.invariants.push_back(
        skipped(Invariant::kPeriod, "retiming is illegal"));
    v.invariants.push_back(skipped(Invariant::kElw, "retiming is illegal"));
  }
  v.invariants.push_back(
      skipped(Invariant::kObjective, "no objective claimed"));
  return v;
}

Verdict RetimingOracle::verify(const SolverResult& result,
                               const Retiming& initial,
                               const ObsGains& gains) const {
  Verdict v = verify(result.r);
  v.invariants.back() = check_objective(result, initial, gains, v);
  return v;
}

void RetimingOracle::verify_ser(const Retiming& r, double reported,
                                const SerOptions& options, Verdict& v) const {
  SERELIN_SPAN("oracle/verify-ser");
  SERELIN_COUNT(kOracleChecks, 1);
  InvariantResult* obj = nullptr;
  for (InvariantResult& res : v.invariants)
    if (res.invariant == Invariant::kObjective) obj = &res;
  SERELIN_REQUIRE(obj != nullptr, "verify_ser: verdict has no objective row");
  if (v.result(Invariant::kLegality).status != CheckStatus::kPass) return;
  const Netlist retimed =
      apply_retiming(*g_, r, g_->netlist().name() + "_oracle");
  const SerReport report = analyze_ser(retimed, g_->library(), options);
  const double scale =
      std::max({std::fabs(reported), std::fabs(report.total), 1e-12});
  if (obj->status == CheckStatus::kSkipped) obj->detail.clear();
  if (std::fabs(report.total - reported) <= opt_.ser_rel_tol * scale) {
    if (obj->status != CheckStatus::kFail) {
      obj->status = CheckStatus::kPass;
      if (!obj->detail.empty()) obj->detail += "; ";
      obj->detail += "SER " + fmt(reported) + " matches Eq. (4) re-analysis";
    }
    return;
  }
  v.diagnostics.report(
      {Severity::kError, DiagCode::kOracleObjective, {}, 0, 0,
       "reported SER " + fmt(reported) + " but Eq. (4) re-analysis gives " +
           fmt(report.total)});
  obj->status = CheckStatus::kFail;
  if (!obj->detail.empty()) obj->detail += "; ";
  obj->detail += "SER mismatch: reported " + fmt(reported) +
                 " != recomputed " + fmt(report.total);
}

}  // namespace serelin
