// RetimingOracle — independent result verification for solver output.
//
// The paper's value proposition is a *guarantee*: the retimed circuit is a
// legal retiming, meets the clock constraint, and keeps every register's
// error-latching window under control. The solvers in src/core enforce
// those properties through the regular forest / constraint checker
// machinery — which means a bug there could produce a confidently wrong
// "success". The oracle re-derives each invariant from scratch through
// code paths that share nothing with the solvers:
//
//   1. LEGALITY  — a direct edge loop over w(e) + r(v) − r(u) ≥ 0 and the
//      pinned boundary labels (paper Eq. 1). Runs as a deadline-aware
//      parallel_for with per-lane diagnostics merged deterministically.
//   2. PERIOD    — the retiming is *materialized* with apply_retiming and
//      a plain forward STA over the rebuilt netlist checks every
//      register-D / primary-output arrival against Φ − Ts. No GraphTiming,
//      no W/D matrices.
//   3. ELW       — exact error-latching windows are recomputed on the
//      materialized netlist with the interval-set engine (timing/elw,
//      paper Eq. 3) and every register-to-logic window is checked against
//      R_min via its interval boundaries (paper Thm. 1: right(ELW) =
//      Φ + Th − min_after).
//   4. OBJECTIVE — the reported K-scaled objective gain is re-derived by
//      two direct Eq. (5) evaluations (plus the §VII area term when
//      enabled); optionally a full Eq. (4) SER re-analysis cross-checks a
//      reported SER total.
//
// Failures come back as a structured Verdict: one InvariantResult per
// invariant plus oracle-* diagnostics in a DiagnosticSink, so tools can
// render and scripts can match codes. The oracle never throws on a wrong
// result — only on violated preconditions (size mismatches) or an expired
// verification deadline (CancelledError, all-or-nothing like the other
// analysis kernels).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/objective.hpp"
#include "core/solver.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "rgraph/retiming_graph.hpp"
#include "ser/ser_analyzer.hpp"
#include "support/deadline.hpp"
#include "support/diag.hpp"
#include "timing/params.hpp"

namespace serelin {

/// The four paper invariants the oracle re-derives.
enum class Invariant : std::uint8_t {
  kLegality,   ///< w_r(e) ≥ 0 on every edge, boundary labels pinned (Eq. 1)
  kPeriod,     ///< every combinational path fits in Φ − Ts
  kElw,        ///< every register ELW obeys the R_min short-path bound
  kObjective,  ///< reported objective/SER matches recomputation
};

/// "legality" / "period" / "elw" / "objective" (stable, used in journals).
const char* invariant_name(Invariant id);

enum class CheckStatus : std::uint8_t {
  kPass,
  kFail,
  kSkipped,  ///< not applicable (e.g. period check on an illegal retiming)
};

const char* check_status_name(CheckStatus s);

/// Outcome of one invariant check.
struct InvariantResult {
  Invariant invariant = Invariant::kLegality;
  CheckStatus status = CheckStatus::kSkipped;
  std::string detail;  ///< worst slack / mismatch account, human-readable
};

/// The oracle's structured answer. Always carries one InvariantResult per
/// invariant (in enum order); failures additionally produce oracle-*
/// diagnostics for rendering and code matching.
struct Verdict {
  std::vector<InvariantResult> invariants;
  DiagnosticSink diagnostics;

  /// True when no invariant failed (skipped checks do not fail a verdict).
  bool ok() const;

  const InvariantResult& result(Invariant id) const;

  /// "verified: legality pass, period FAIL, elw pass, objective skipped".
  std::string summary() const;
};

struct OracleOptions {
  TimingParams timing;  ///< the Φ / Ts / Th the result claims to meet
  double rmin = 0.0;    ///< P2' bound; the ELW check is vacuous when ≤ 0
  /// Check the ELW/R_min invariant. Off for results of solvers that do not
  /// enforce P2' (Efficient MinObs, min-period, identity).
  bool check_elw = true;
  /// §VII area augmentation the solver ran with (0 = paper objective);
  /// folded into the objective recomputation exactly as compute_gains does.
  double area_weight = 0.0;
  /// Numeric slack for path-delay comparisons. Wider than the solver's
  /// internal 1e-9: the oracle sums delays in a different order, so it
  /// must tolerate associativity noise without passing real violations.
  double eps = 1e-6;
  /// Relative tolerance of the SER cross-check (analysis is deterministic,
  /// so only summation-order noise needs absorbing).
  double ser_rel_tol = 1e-9;
  /// Verification budget. The oracle is all-or-nothing: expiry throws
  /// CancelledError, it never returns a half-verified Verdict.
  Deadline deadline;
  /// Cap on per-invariant diagnostics kept in the Verdict.
  std::size_t max_diagnostics = 64;
};

class RetimingOracle {
 public:
  RetimingOracle(const RetimingGraph& g, OracleOptions options);

  /// Verifies invariants 1–3 of a bare retiming; the objective invariant
  /// is reported as skipped (nothing was claimed).
  Verdict verify(const Retiming& r) const;

  /// Verifies all four invariants of a solver result: the reported
  /// objective_gain is re-derived from two direct Eq. (5) evaluations
  /// between `initial` and `result.r` using `gains` observabilities.
  Verdict verify(const SolverResult& result, const Retiming& initial,
                 const ObsGains& gains) const;

  /// Appends the Eq. (4) SER cross-check to `v` (folded into the
  /// objective invariant's diagnostics): re-analyzes the materialized
  /// retimed netlist and compares with the reported total.
  void verify_ser(const Retiming& r, double reported,
                  const SerOptions& options, Verdict& v) const;

  const OracleOptions& options() const { return opt_; }

 private:
  InvariantResult check_legality(const Retiming& r, Verdict& v) const;
  InvariantResult check_period(const Netlist& retimed, Verdict& v) const;
  InvariantResult check_elw(const Netlist& retimed, Verdict& v) const;
  InvariantResult check_objective(const SolverResult& result,
                                  const Retiming& initial,
                                  const ObsGains& gains, Verdict& v) const;

  const RetimingGraph* g_;
  OracleOptions opt_;
};

/// Longest combinational path of a finalized netlist (register/PI output
/// to register-D/PO input) by forward STA — the oracle's independent
/// period measurement, exposed for the pipeline's identity stage.
double critical_path(const Netlist& nl, const CellLibrary& lib);

}  // namespace serelin
