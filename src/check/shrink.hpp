// Delta-debugging shrinker for fuzzer counterexamples.
//
// A divergence found on a 40-gate random circuit is unreadable; the same
// divergence on a 6-gate circuit is a bug report. shrink_netlist() greedily
// removes one node at a time — rewiring the node's consumers to its first
// fanin (gates, flip-flops) or to a sibling primary input — and keeps each
// removal only when the caller's predicate still holds (still diverges,
// still crashes). It loops to a fixpoint: the result is 1-minimal with
// respect to the removal operator — no single further node removal
// preserves the predicate.
//
// Removals that would make the netlist structurally illegal (bypassing a
// flip-flop can close a combinational cycle; dropping the last input or
// output) are skipped, not repaired: every candidate handed to the
// predicate is a finalized, legal netlist, so the predicate can run the
// full solver stack without defensive checks.
#pragma once

#include <functional>

#include "netlist/netlist.hpp"

namespace serelin {

/// True when the candidate still exhibits the behavior being minimized
/// (the divergence, the crash). Called with finalized netlists only; it
/// must be deterministic — a flaky predicate yields a meaningless minimum.
using ShrinkPredicate = std::function<bool(const Netlist&)>;

struct ShrinkOptions {
  /// Predicate-evaluation budget. Each candidate netlist costs one check;
  /// exhausting the budget stops the shrink at the best netlist so far
  /// (one_minimal stays false).
  int max_checks = 4000;
};

struct ShrinkResult {
  Netlist netlist;        ///< smallest netlist still satisfying the predicate
  int checks = 0;         ///< predicate evaluations spent
  int removed = 0;        ///< nodes removed from the original
  /// True when a full pass over the final netlist removed nothing (within
  /// budget): no single node removal preserves the predicate.
  bool one_minimal = false;
};

/// Requires `start` finalized and satisfying the predicate (throws
/// AssertionError otherwise — a shrink of a non-failing input is a harness
/// bug, not a fuzzing outcome).
ShrinkResult shrink_netlist(const Netlist& start,
                            const ShrinkPredicate& still_fails,
                            ShrinkOptions options = {});

}  // namespace serelin
