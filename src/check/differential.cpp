#include "check/differential.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "check/cross_check.hpp"
#include "check/oracle.hpp"
#include "core/closure_solver.hpp"
#include "core/exhaustive.hpp"
#include "core/initializer.hpp"
#include "core/min_period.hpp"
#include "core/objective.hpp"
#include "core/solver.hpp"
#include "core/wd_query.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/validate.hpp"
#include "rgraph/apply.hpp"
#include "rgraph/retiming_graph.hpp"
#include "sim/observability.hpp"
#include "sim/sim_config.hpp"
#include "support/rng.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {

namespace {

constexpr double kPeriodEps = 1e-6;

Deadline engine_deadline(const DiffConfig& cfg) {
  return cfg.engine_seconds > 0 ? Deadline::after(cfg.engine_seconds)
                                : Deadline();
}

/// First movable vertex (fault application point). The generator never
/// produces gateless circuits, but stay defensive.
VertexId first_movable(const RetimingGraph& g) {
  return g.gate_vertices().empty() ? 0 : g.gate_vertices().front();
}

/// True when every combinational path under `r` fits in phi − setup.
/// Requires g.valid(r).
bool achieves_period(const RetimingGraph& g, const Retiming& r, double phi,
                     double setup, std::string* why) {
  GraphTiming t(g, TimingParams{phi, setup, 0.0});
  t.compute(r);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (t.arrival(v) > phi - setup + kPeriodEps) {
      if (why != nullptr)
        *why = "arrival " + std::to_string(t.arrival(v)) + " at vertex " +
               std::to_string(v) + " exceeds budget " +
               std::to_string(phi - setup);
      return false;
    }
  }
  return true;
}

/// Largest per-vertex decrease a solver committed (sizes the exhaustive
/// search box so it provably contains the solver's point).
int max_decrease(const RetimingGraph& g, const Retiming& initial,
                 const Retiming& result) {
  int best = 0;
  for (const VertexId v : g.gate_vertices())
    best = std::max(best, static_cast<int>(initial[v] - result[v]));
  return best;
}

struct Harness {
  const Netlist& nl;
  const DiffConfig& cfg;
  DifferentialReport report;

  explicit Harness(const Netlist& n, const DiffConfig& c) : nl(n), cfg(c) {}

  void diverge(std::string kind, std::string detail) {
    report.divergences.push_back({std::move(kind), std::move(detail)});
  }

  EngineOutcome& outcome(std::string name, EngineStatus status,
                         std::string detail = {}) {
    report.engines.push_back({std::move(name), status, 0, std::move(detail)});
    return report.engines.back();
  }
};

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kObjectiveSkew: return "objective-skew";
    case FaultKind::kRetimingPerturb: return "retiming-perturb";
    case FaultKind::kGainSkew: return "gain-skew";
    case FaultKind::kRminSkew: return "rmin-skew";
    case FaultKind::kPeriodSkew: return "period-skew";
    case FaultKind::kStopDetailDrop: return "stop-detail-drop";
  }
  return "unknown";
}

const char* engine_status_name(EngineStatus s) {
  switch (s) {
    case EngineStatus::kOk: return "ok";
    case EngineStatus::kTimeout: return "timeout";
    case EngineStatus::kSkipped: return "skipped";
    case EngineStatus::kCrashed: return "crashed";
  }
  return "unknown";
}

std::string DifferentialReport::summary() const {
  if (!ran) {
    return "setup failed: " +
           (divergences.empty() ? std::string("(no detail)")
                                : divergences.front().detail);
  }
  if (divergences.empty()) {
    std::size_t active = 0;
    for (const auto& e : engines)
      if (e.status != EngineStatus::kSkipped) ++active;
    return "clean: " + std::to_string(active) + " engines agree";
  }
  std::string s = "DIVERGENT: " + divergences.front().kind + " (" +
                  divergences.front().detail + ")";
  if (divergences.size() > 1)
    s += " and " + std::to_string(divergences.size() - 1) + " more";
  return s;
}

DifferentialReport run_differential(const Netlist& nl, const DiffConfig& cfg) {
  Harness h(nl, cfg);

  // ---- Shared setup: graph, Section-V initialization, gains ------------
  CellLibrary lib;
  InitResult init;
  ObsGains gains;
  std::optional<RetimingGraph> graph;
  try {
    graph.emplace(nl, lib);
  } catch (const std::exception& e) {
    h.diverge("setup-crash", std::string("graph construction: ") + e.what());
    return h.report;
  }
  const RetimingGraph& g = *graph;
  try {
    init = initialize_retiming(g, InitOptions{});
    SimConfig sim;
    sim.patterns = cfg.patterns;
    sim.frames = cfg.frames;
    sim.warmup = cfg.warmup;
    sim.seed = cfg.sim_seed;
    const ObsResult obs = ObservabilityAnalyzer(nl, sim).run();
    gains = compute_gains(g, obs.obs, cfg.patterns, cfg.area_weight);
  } catch (const std::exception& e) {
    h.diverge("setup-crash", std::string("initialization: ") + e.what());
    return h.report;
  }
  h.report.ran = true;

  const bool elw_active = cfg.enforce_elw && init.rmin > 0;
  SolverOptions base;
  base.timing = init.timing;
  base.rmin = init.rmin;
  base.enforce_elw = elw_active;
  base.violation_batch = cfg.violation_batch;

  // ---- Per-engine inputs, with the planted input fault applied ---------
  auto engine_gains = [&](int engine) {
    ObsGains skewed = gains;
    if (cfg.fault.kind == FaultKind::kGainSkew && cfg.fault.engine == engine) {
      // Every movable vertex looks 8K more attractive: any committed move
      // inflates the reported gain beyond what the true Eq. (5) delta is.
      for (const VertexId v : g.gate_vertices())
        skewed.gain[v] += 8LL * gains.patterns;
    }
    return skewed;
  };
  auto engine_options = [&](int engine) {
    SolverOptions o = base;
    o.deadline = engine_deadline(cfg);
    if (cfg.fault.engine == engine) {
      // Skews are aggressive on purpose: the planted engine must actually
      // exploit the loosened constraint for the oracle to catch it.
      if (cfg.fault.kind == FaultKind::kRminSkew) o.rmin = 0.0;
      if (cfg.fault.kind == FaultKind::kPeriodSkew)
        o.timing.period = base.timing.period * 1.5;
    }
    return o;
  };
  auto plant_result_fault = [&](int engine, SolverResult& res) {
    if (cfg.fault.engine != engine) return;
    switch (cfg.fault.kind) {
      case FaultKind::kObjectiveSkew:
        res.objective_gain += gains.patterns + 1;
        break;
      case FaultKind::kRetimingPerturb:
        res.r[first_movable(g)] -= 64;
        break;
      case FaultKind::kStopDetailDrop:
        res.stop_reason = StopReason::kDeadline;
        res.stop_detail.clear();
        break;
      default:
        break;
    }
  };

  // ---- Run forest and closure, verify each against the oracle ----------
  OracleOptions oo;
  oo.timing = init.timing;
  oo.rmin = init.rmin;
  oo.area_weight = cfg.area_weight;

  struct SolverRun {
    EngineStatus status = EngineStatus::kSkipped;
    SolverResult res;
  };
  std::vector<SolverRun> runs(2);
  const char* kSolverNames[2] = {"forest", "closure"};
  for (int engine = 0; engine < 2; ++engine) {
    SolverRun& run = runs[static_cast<std::size_t>(engine)];
    const ObsGains eg = engine_gains(engine);
    const SolverOptions eo = engine_options(engine);
    try {
      run.res = engine == 0 ? MinObsWinSolver(g, eg, eo).solve(init.r)
                            : ClosureSolver(g, eg, eo).solve(init.r);
    } catch (const CancelledError& e) {
      h.outcome(kSolverNames[engine], EngineStatus::kTimeout, e.what());
      run.status = EngineStatus::kTimeout;
      continue;
    } catch (const std::exception& e) {
      h.outcome(kSolverNames[engine], EngineStatus::kCrashed, e.what());
      h.diverge("engine-crash",
                std::string(kSolverNames[engine]) + " threw: " + e.what());
      run.status = EngineStatus::kCrashed;
      continue;
    }
    plant_result_fault(engine, run.res);

    // A Partial result is a timeout, not a disagreement — but only when it
    // says so. Losing stop_detail would make the two indistinguishable.
    if (run.res.partial() && run.res.stop_detail.empty()) {
      h.diverge("partial-without-detail",
                std::string(kSolverNames[engine]) +
                    " returned a partial result (stop_reason " +
                    stop_reason_name(run.res.stop_reason) +
                    ") with an empty stop_detail");
    }

    // Solvers promise a feasible retiming even when stopped early.
    if (run.res.r.size() != g.vertex_count() || !g.valid(run.res.r)) {
      h.diverge("illegal-retiming", std::string(kSolverNames[engine]) +
                                        " returned an invalid retiming");
      h.outcome(kSolverNames[engine], EngineStatus::kCrashed,
                "invalid retiming");
      run.status = EngineStatus::kCrashed;
      continue;
    }

    // Independent re-derivation of every claimed invariant. The oracle
    // always sees the TRUE timing/rmin/gains — that is exactly how a
    // solver fed skewed inputs (planted or buggy) gets caught.
    oo.check_elw = elw_active && !run.res.exited_early;
    const Verdict v =
        RetimingOracle(g, oo).verify(run.res, init.r, gains);
    if (!v.ok()) {
      h.diverge("oracle-reject",
                std::string(kSolverNames[engine]) + ": " + v.summary());
    }

    run.status =
        run.res.partial() ? EngineStatus::kTimeout : EngineStatus::kOk;
    EngineOutcome& out =
        h.outcome(kSolverNames[engine], run.status, run.res.stop_detail);
    out.objective_gain = run.res.objective_gain;
  }

  // ---- Objective agreement: closure <= forest == exhaustive ------------
  const SolverRun& forest = runs[0];
  const SolverRun& closure = runs[1];
  const bool comparable = forest.status == EngineStatus::kOk &&
                          closure.status == EngineStatus::kOk;
  if (comparable && forest.res.exited_early != closure.res.exited_early) {
    h.diverge("exited-early-mismatch",
              std::string("forest exited_early=") +
                  (forest.res.exited_early ? "true" : "false") +
                  ", closure exited_early=" +
                  (closure.res.exited_early ? "true" : "false"));
  }
  if (comparable && closure.res.objective_gain > forest.res.objective_gain) {
    h.diverge("objective-mismatch",
              "closure gain " + std::to_string(closure.res.objective_gain) +
                  " exceeds forest gain " +
                  std::to_string(forest.res.objective_gain) +
                  " (closure is a lower bound)");
  }
  if (forest.status == EngineStatus::kOk && !forest.res.exited_early &&
      g.gate_vertices().size() <= cfg.exhaustive_max_gates) {
    int bound =
        std::max(cfg.exhaustive_bound, max_decrease(g, init.r, forest.res.r));
    if (comparable)
      bound = std::max(bound, max_decrease(g, init.r, closure.res.r));
    if (bound > 6) {
      h.outcome("exhaustive", EngineStatus::kSkipped,
                "search box bound " + std::to_string(bound) + " too large");
    } else {
      try {
        SolverOptions eo = base;
        eo.deadline = engine_deadline(cfg);
        const ExhaustiveResult ex =
            exhaustive_best(g, gains, eo, init.r, bound);
        EngineOutcome& out = h.outcome("exhaustive", EngineStatus::kOk);
        out.objective_gain = ex.objective_gain;
        if (forest.res.objective_gain != ex.objective_gain) {
          h.diverge("objective-mismatch",
                    "forest gain " + std::to_string(forest.res.objective_gain) +
                        " != exhaustive optimum " +
                        std::to_string(ex.objective_gain) + " (bound " +
                        std::to_string(bound) + ")");
        }
      } catch (const CancelledError& e) {
        h.outcome("exhaustive", EngineStatus::kTimeout, e.what());
      } catch (const std::exception& e) {
        h.outcome("exhaustive", EngineStatus::kCrashed, e.what());
        h.diverge("engine-crash", std::string("exhaustive threw: ") + e.what());
      }
    }
  } else {
    h.outcome("exhaustive", EngineStatus::kSkipped,
              g.gate_vertices().size() > cfg.exhaustive_max_gates
                  ? "gate count above exhaustive_max_gates"
                  : "forest result not comparable");
  }

  // ---- W/D engines: lazy vs dense, three min-period paths --------------
  if (cfg.check_wd) {
    try {
      WdQueryOptions dense_opt;
      dense_opt.dense_threshold = static_cast<std::size_t>(-1);
      dense_opt.deadline = engine_deadline(cfg);
      WdQueryOptions lazy_opt;
      lazy_opt.dense_threshold = 0;
      lazy_opt.deadline = engine_deadline(cfg);
      auto dense = make_wd_query(g, dense_opt);
      auto lazy = make_wd_query(g, lazy_opt);

      const CrossCheckResult cc = cross_check_wd_engine(g, *lazy);
      if (!cc.ok) h.diverge("wd-engine-mismatch", cc.detail);
      h.outcome("wd-lazy", cc.ok ? EngineStatus::kOk : EngineStatus::kCrashed,
                cc.ok ? std::string() : cc.detail);

      const auto dq =
          wd_query_min_period(g, *dense, base.timing.setup, engine_deadline(cfg));
      const auto lq =
          wd_query_min_period(g, *lazy, base.timing.setup, engine_deadline(cfg));
      MinPeriodRetimer::Options mo;
      mo.setup = base.timing.setup;
      mo.deadline = engine_deadline(cfg);
      const auto feas = MinPeriodRetimer(g, mo).minimize();

      struct PeriodRun {
        const char* name;
        double period;
        const Retiming* r;
        bool partial;
        const std::string* detail;
        StopReason reason;
      };
      const PeriodRun prs[3] = {
          {"wd-dense", dq.period, &dq.r, dq.partial(), &dq.stop_detail,
           dq.stop_reason},
          {"wd-lazy-minperiod", lq.period, &lq.r, lq.partial(),
           &lq.stop_detail, lq.stop_reason},
          {"feas", feas.period, &feas.r, feas.partial(), &feas.stop_detail,
           feas.stop_reason},
      };
      for (const PeriodRun& pr : prs) {
        if (pr.partial && pr.detail->empty()) {
          h.diverge("partial-without-detail",
                    std::string(pr.name) +
                        " returned a partial result (stop_reason " +
                        stop_reason_name(pr.reason) +
                        ") with an empty stop_detail");
        }
        h.outcome(pr.name,
                  pr.partial ? EngineStatus::kTimeout : EngineStatus::kOk,
                  *pr.detail);
        if (pr.r->size() != g.vertex_count() || !g.valid(*pr.r)) {
          h.diverge("illegal-retiming",
                    std::string(pr.name) + " returned an invalid retiming");
          continue;
        }
        std::string why;
        if (!achieves_period(g, *pr.r, pr.period, base.timing.setup, &why)) {
          h.diverge("period-mismatch", std::string(pr.name) +
                                           " retiming misses its claimed "
                                           "period " +
                                           std::to_string(pr.period) + ": " +
                                           why);
        }
      }
      // The dense search is exact; lazy and FEAS are upper bounds. Either
      // of them claiming a *better* period than the exact optimum is a
      // divergence (the other direction is legitimate approximation).
      if (!dq.partial()) {
        if (!dq.exact) {
          h.diverge("period-mismatch",
                    "dense engine reported a non-exact min period");
        }
        if (!lq.partial() && lq.period < dq.period - kPeriodEps) {
          h.diverge("period-mismatch",
                    "lazy min period " + std::to_string(lq.period) +
                        " beats the exact dense optimum " +
                        std::to_string(dq.period));
        }
        if (!feas.partial() && feas.period < dq.period - kPeriodEps) {
          h.diverge("period-mismatch",
                    "FEAS min period " + std::to_string(feas.period) +
                        " beats the exact dense optimum " +
                        std::to_string(dq.period));
        }
      }
    } catch (const CancelledError& e) {
      h.outcome("wd-dense", EngineStatus::kTimeout, e.what());
    } catch (const std::exception& e) {
      h.outcome("wd-dense", EngineStatus::kCrashed, e.what());
      h.diverge("engine-crash", std::string("wd engines threw: ") + e.what());
    }
  } else {
    h.outcome("wd-dense", EngineStatus::kSkipped, "check_wd disabled");
  }

  // ---- Incremental relabeling: random walk vs fresh compute ------------
  if (cfg.check_incremental && !g.gate_vertices().empty()) {
    try {
      GraphTiming t(g, init.timing);
      t.compute(init.r);
      Retiming r = init.r;
      Rng rng(cfg.walk_seed ^ 0x9e3779b97f4a7c15ULL);
      const auto& gates = g.gate_vertices();
      int applied = 0;
      for (int move = 0; move < cfg.walk_moves; ++move) {
        const VertexId v =
            gates[rng.below(static_cast<std::uint64_t>(gates.size()))];
        const std::int32_t delta = rng.chance(0.7) ? -1 : 1;
        r[v] += delta;
        if (!g.valid(r)) {
          r[v] -= 2 * delta;  // try the opposite direction
          if (!g.valid(r)) {
            r[v] += delta;  // restore; vertex is pinned right now
            continue;
          }
        }
        const VertexId hint[1] = {v};
        t.update(r, std::span<const VertexId>(hint));
        ++applied;
      }
      const CrossCheckResult cc = cross_check_incremental_timing(g, t, r);
      if (!cc.ok) h.diverge("incremental-mismatch", cc.detail);
      h.outcome("incremental",
                cc.ok ? EngineStatus::kOk : EngineStatus::kCrashed,
                cc.ok ? std::to_string(applied) + " moves applied"
                      : cc.detail);
    } catch (const std::exception& e) {
      h.outcome("incremental", EngineStatus::kCrashed, e.what());
      h.diverge("engine-crash",
                std::string("incremental walk threw: ") + e.what());
    }
  } else {
    h.outcome("incremental", EngineStatus::kSkipped,
              cfg.check_incremental ? "no movable vertices"
                                    : "check_incremental disabled");
  }

  // ---- Materialization: apply → write → reparse must round-trip --------
  if (cfg.check_materialize && forest.status != EngineStatus::kCrashed &&
      forest.status != EngineStatus::kSkipped && g.valid(forest.res.r)) {
    try {
      const Netlist retimed =
          apply_retiming(g, forest.res.r, nl.name() + "-rt");
      std::ostringstream os;
      write_bench(os, retimed);
      std::istringstream is(os.str());
      const Netlist back = read_bench(is, retimed.name());
      std::string why;
      if (!structurally_equal(retimed, back, &why)) {
        h.diverge("materialize-mismatch",
                  "bench round-trip of the retimed netlist diverged: " + why);
        h.outcome("materialize", EngineStatus::kCrashed, why);
      } else {
        h.outcome("materialize", EngineStatus::kOk);
      }
    } catch (const std::exception& e) {
      h.outcome("materialize", EngineStatus::kCrashed, e.what());
      h.diverge("engine-crash",
                std::string("materialization threw: ") + e.what());
    }
  } else {
    h.outcome("materialize", EngineStatus::kSkipped,
              cfg.check_materialize ? "no forest retiming to materialize"
                                    : "check_materialize disabled");
  }

  return h.report;
}

}  // namespace serelin
