// One differential-fuzzing iteration: run every solver engine the project
// ships on the same circuit and assert that they agree.
//
// The solver stack has redundant implementations by design — the regular
// forest (MinObsWin), the closure solver, exhaustive enumeration, the
// dense and lazy W/D engines, incremental and from-scratch relabeling —
// and the paper's own test invariants tie them together: the forest must
// match exhaustive search exactly on tiny instances, the closure solver
// can never beat the forest, the lazy W/D engine is bit-identical to the
// dense one, incremental relabeling is bit-identical to compute(). A
// differential run executes all of them on one netlist and turns every
// violated agreement into a structured Divergence, so a coverage-guided
// fuzzer (tools/fuzz_solvers) only has to generate circuits and count.
//
// Timeouts are not disagreements: an engine that stops at its deadline
// returns a Partial result whose stop_detail says so, is reported with
// EngineStatus::kTimeout, and is excluded from objective comparisons. A
// Partial result with an *empty* stop_detail, on the other hand, is a
// contract violation ("partial-without-detail") — the whole point of the
// stop_detail field is that a differential harness must never confuse
// "ran out of time" with "computed a different answer".
//
// Self-check: PlantedFault seeds a known divergence into one engine's
// inputs or outputs (fault_inject-style), so the fuzzer can prove its own
// detection power before trusting a clean run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "support/deadline.hpp"

namespace serelin {

/// Fault planted into one engine of a differential run (self-check mode).
/// kNone fuzzes honestly; everything else must surface as >= 1 divergence.
enum class FaultKind : std::uint8_t {
  kNone,
  kObjectiveSkew,    ///< inflate the reported objective_gain (oracle catches)
  kRetimingPerturb,  ///< corrupt one retiming label (legality catches)
  kGainSkew,         ///< solver sees a skewed gain vector (objective catches)
  kRminSkew,         ///< solver sees a halved R_min (ELW oracle catches)
  kPeriodSkew,       ///< solver sees a relaxed period (period oracle catches)
  kStopDetailDrop,   ///< Partial result with stop_detail stripped
};

/// Number of fault kinds including kNone (for schedule sweeps).
inline constexpr int kNumFaultKinds = 7;

/// Stable names: "none", "objective-skew", ... (CLI flags and journals).
const char* fault_kind_name(FaultKind kind);

struct PlantedFault {
  FaultKind kind = FaultKind::kNone;
  /// Engine the fault applies to: 0 = forest (MinObsWin), 1 = closure.
  int engine = 0;
};

/// Knobs of one differential run. Defaults are sized for fuzzing: small
/// simulations, exhaustive search only on tiny gate counts.
struct DiffConfig {
  // Observability simulation driving the gains (kept small: the engines
  // must agree for *any* gain vector, accuracy is irrelevant here).
  int patterns = 128;   ///< K; multiple of 64
  int frames = 3;
  int warmup = 4;
  std::uint64_t sim_seed = 0x5e7e11a5ULL;

  bool enforce_elw = true;   ///< run MinObsWin (else MinObs baseline mode)
  double area_weight = 0.0;  ///< §VII area term forwarded to compute_gains
  std::size_t violation_batch = 256;

  /// Gate-count ceiling for the exhaustive reference ((bound+1)^gates
  /// feasibility checks); above it only forest-vs-closure is compared.
  std::size_t exhaustive_max_gates = 7;
  int exhaustive_bound = 3;

  /// Per-engine wall-clock budget in seconds; <= 0 means none. Engines
  /// that hit it report kTimeout, not a divergence.
  double engine_seconds = 0.0;

  bool check_wd = true;           ///< dense-vs-lazy W/D + min-period engines
  bool check_incremental = true;  ///< incremental relabeling random walk
  bool check_materialize = true;  ///< apply_retiming → write → reparse

  /// Moves of the incremental-relabeling random walk and its seed.
  int walk_moves = 24;
  std::uint64_t walk_seed = 1;

  PlantedFault fault;  ///< self-check fault (kind kNone = honest run)
};

enum class EngineStatus : std::uint8_t {
  kOk,       ///< converged; participates in every comparison
  kTimeout,  ///< Partial with stop_detail; excluded from objective checks
  kSkipped,  ///< not run (config or size gate)
  kCrashed,  ///< threw; always a divergence
};

const char* engine_status_name(EngineStatus s);

/// Per-engine record of a differential run.
struct EngineOutcome {
  std::string name;  ///< "forest", "closure", "exhaustive", ...
  EngineStatus status = EngineStatus::kSkipped;
  std::int64_t objective_gain = 0;
  std::string detail;  ///< stop_detail / exception text / skip reason
};

/// One violated agreement. `kind` is a stable slug ("objective-mismatch",
/// "oracle-reject", ...) listed in docs/ROBUSTNESS.md; `detail` is the
/// human-readable account.
struct Divergence {
  std::string kind;
  std::string detail;
};

/// Aggregated verdict of one differential run over all engines.
struct DifferentialReport {
  std::vector<EngineOutcome> engines;
  std::vector<Divergence> divergences;
  bool ran = false;  ///< false when setup (graph/init/sim) itself failed

  bool divergent() const { return !divergences.empty(); }

  /// "clean: 5 engines agree" / "DIVERGENT: objective-mismatch (...)".
  std::string summary() const;
};

/// Runs every configured engine on `nl` and cross-checks the results.
/// Never throws on a wrong solver answer — wrongness becomes a Divergence
/// (setup failures are reported the same way with ran = false).
DifferentialReport run_differential(const Netlist& nl, const DiffConfig& cfg);

}  // namespace serelin
