#include "check/shrink.hpp"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "netlist/builder.hpp"
#include "netlist/cell.hpp"
#include "support/check.hpp"

namespace serelin {

namespace {

/// Signal the victim's consumers get rewired to: the victim's first fanin
/// when it has one that is not itself, else a sibling primary input.
/// Empty when no legal substitute exists (e.g. the only primary input).
std::string pick_replacement(const Netlist& nl, NodeId victim) {
  const Node& node = nl.node(victim);
  for (const NodeId f : node.fanins)
    if (f != victim) return nl.node(f).name;
  for (const NodeId pi : nl.inputs())
    if (pi != victim) return nl.node(pi).name;
  return {};
}

/// Rebuilds `nl` without `victim`, rewiring every reference (fanins and
/// primary-output marks) to the replacement signal. nullopt when the
/// removal has no substitute or the rebuilt netlist is structurally
/// illegal (typically: bypassing a flip-flop closed a combinational
/// cycle) — such candidates are skipped, never repaired.
std::optional<Netlist> remove_node(const Netlist& nl, NodeId victim) {
  const std::string replacement = pick_replacement(nl, victim);
  if (replacement.empty()) return std::nullopt;
  const std::string& victim_name = nl.node(victim).name;
  const auto mapped = [&](const std::string& name) -> const std::string& {
    return name == victim_name ? replacement : name;
  };

  NetlistBuilder b(nl.name());
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (id == victim) continue;
    const Node& node = nl.node(id);
    switch (node.type) {
      case CellType::kInput:
        b.input(node.name);
        break;
      case CellType::kDff:
        b.dff(node.name, mapped(nl.node(node.fanins.front()).name));
        break;
      case CellType::kConst0:
      case CellType::kConst1:
        b.constant(node.name, node.type == CellType::kConst1);
        break;
      default: {
        std::vector<std::string> fanins;
        fanins.reserve(node.fanins.size());
        for (const NodeId f : node.fanins)
          fanins.push_back(mapped(nl.node(f).name));
        b.gate(node.name, node.type, std::move(fanins));
        break;
      }
    }
  }
  for (const NodeId out : nl.outputs())
    b.output(out == victim ? replacement : nl.node(out).name);

  try {
    return b.build();
  } catch (const std::exception&) {
    return std::nullopt;  // illegal removal (cycle, arity, ...): skip
  }
}

}  // namespace

ShrinkResult shrink_netlist(const Netlist& start,
                            const ShrinkPredicate& still_fails,
                            ShrinkOptions options) {
  SERELIN_REQUIRE(start.finalized(), "shrink_netlist needs a finalized start");
  SERELIN_REQUIRE(still_fails(start),
                  "shrink_netlist start does not satisfy the predicate");

  ShrinkResult out;
  Netlist current = start;
  bool budget_left = true;
  while (budget_left) {
    bool progress = false;
    // Names are the stable handles across rebuilds; node ids are not.
    std::vector<std::string> names;
    names.reserve(current.node_count());
    for (NodeId id = 0; id < current.node_count(); ++id)
      names.push_back(current.node(id).name);
    for (const std::string& name : names) {
      const NodeId id = current.find(name);
      if (id == kNullNode) continue;  // removed earlier this pass
      std::optional<Netlist> candidate = remove_node(current, id);
      if (!candidate) continue;
      if (out.checks >= options.max_checks) {
        budget_left = false;
        break;
      }
      ++out.checks;
      if (still_fails(*candidate)) {
        current = std::move(*candidate);
        ++out.removed;
        progress = true;
      }
    }
    if (budget_left && !progress) {
      // A full pass over the final netlist removed nothing: 1-minimal.
      out.one_minimal = true;
      break;
    }
  }
  out.netlist = std::move(current);
  return out;
}

}  // namespace serelin
