#include "check/cross_check.hpp"

#include <algorithm>

#include "core/wd_matrices.hpp"
#include "support/check.hpp"

namespace serelin {

namespace {

std::string vertex_detail(const char* label, VertexId v, double got,
                          double want) {
  return std::string(label) + " diverges at vertex " + std::to_string(v) +
         ": incremental " + std::to_string(got) + " vs recompute " +
         std::to_string(want);
}

}  // namespace

CrossCheckResult cross_check_incremental_timing(const RetimingGraph& g,
                                                const GraphTiming& incremental,
                                                const Retiming& r) {
  SERELIN_REQUIRE(g.valid(r),
                  "cross_check_incremental_timing needs a valid retiming");
  GraphTiming fresh(g, incremental.params());
  fresh.compute(r);
  CrossCheckResult out;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    // Bitwise equality on purpose: the incremental relabel re-runs the
    // exact compute() loop bodies, so even the rounding must agree.
    if (incremental.arrival(v) != fresh.arrival(v)) {
      out.ok = false;
      out.detail =
          vertex_detail("arrival", v, incremental.arrival(v), fresh.arrival(v));
      return out;
    }
    if (incremental.max_after(v) != fresh.max_after(v)) {
      out.ok = false;
      out.detail = vertex_detail("max_after", v, incremental.max_after(v),
                                 fresh.max_after(v));
      return out;
    }
    if (incremental.min_after(v) != fresh.min_after(v)) {
      out.ok = false;
      out.detail = vertex_detail("min_after", v, incremental.min_after(v),
                                 fresh.min_after(v));
      return out;
    }
    if (incremental.lt(v) != fresh.lt(v) || incremental.rt(v) != fresh.rt(v) ||
        incremental.crit_min_edge(v) != fresh.crit_min_edge(v)) {
      out.ok = false;
      out.detail = "critical-path witness diverges at vertex " +
                   std::to_string(v);
      return out;
    }
  }
  return out;
}

CrossCheckResult cross_check_wd_engine(const RetimingGraph& g, WdQuery& wd,
                                       std::size_t samples) {
  CrossCheckResult out;
  WdMatrices dense(g);
  const std::size_t n = g.vertex_count();
  SERELIN_REQUIRE(wd.size() == n, "query engine built for another graph");

  // Point queries on evenly-strided source rows.
  const std::size_t stride =
      std::max<std::size_t>(1, n / std::max<std::size_t>(1, samples));
  for (VertexId u = 0; u < n; u += stride) {
    for (VertexId v = 0; v < n; ++v) {
      if (wd.w(u, v) != dense.w(u, v)) {
        out.ok = false;
        out.detail = "W(" + std::to_string(u) + ", " + std::to_string(v) +
                     ") mismatch: query " + std::to_string(wd.w(u, v)) +
                     " vs dense " + std::to_string(dense.w(u, v));
        return out;
      }
      if (dense.w(u, v) != WdMatrices::kUnreachable &&
          wd.d(u, v) != dense.d(u, v)) {
        out.ok = false;
        out.detail = "D(" + std::to_string(u) + ", " + std::to_string(v) +
                     ") mismatch: query " + std::to_string(wd.d(u, v)) +
                     " vs dense " + std::to_string(dense.d(u, v));
        return out;
      }
    }
  }

  // Feasibility probes: the pruned constraint system must reach the exact
  // Bellman-Ford solution of the dense one at every period, including an
  // infeasible probe below the smallest candidate.
  const auto cands = dense.candidate_periods();
  if (cands.empty()) return out;
  std::vector<double> probes{cands.front() * 0.5, cands.front(),
                             cands[cands.size() / 2], cands.back()};
  for (double phi : probes) {
    const auto ref = wd_retime_for_period(g, dense, phi);
    const auto got = wd_query_retime_for_period(g, wd, phi);
    if (ref.has_value() != got.has_value() ||
        (ref.has_value() && *ref != *got)) {
      out.ok = false;
      out.detail = "retime_for_period(" + std::to_string(phi) +
                   ") diverges between the query engine and the dense "
                   "reference";
      return out;
    }
  }
  return out;
}

}  // namespace serelin
