// Cross-checks between the incremental / lazy fast paths and their
// from-scratch ground truths. The solvers run on GraphTiming::update()
// cones and the LazyWdQuery's pruned constraint sweeps; both carry
// bit-identity proofs (docs/SPARSE_WD.md), and these helpers are the
// executable form of those proofs — independent recomputation through the
// eager code paths, compared field by field. They back the oracle-style
// validation suites (tests/test_check.cpp) and are available to any tool
// that wants a paranoid mode; like the RetimingOracle they report rather
// than throw.
#pragma once

#include <string>

#include "core/wd_query.hpp"
#include "rgraph/retiming_graph.hpp"
#include "timing/graph_timing.hpp"

namespace serelin {

/// Outcome of one cross-check: ok, plus a human-readable account of the
/// first divergence when not.
struct CrossCheckResult {
  bool ok = true;
  std::string detail;
};

/// Verifies that `incremental` (a GraphTiming that has been advanced to
/// retiming `r` through update() calls) holds labels bit-identical to a
/// fresh GraphTiming::compute(r) with the same parameters. Requires
/// g.valid(r). Every label the constraint checker reads is compared:
/// arrival, max_after, min_after, lt, rt and crit_min_edge, with exact
/// (bitwise) double equality — the incremental contract is identity, not
/// approximation.
CrossCheckResult cross_check_incremental_timing(const RetimingGraph& g,
                                                const GraphTiming& incremental,
                                                const Retiming& r);

/// Verifies that `wd` (any engine, typically lazy) agrees with a freshly
/// built dense reference: point queries on `samples` evenly-strided source
/// rows, and bit-identical wd_query_retime_for_period results at each
/// probe period (the pruning-dominance invariant, end to end). Dense
/// reference construction is Θ(|V|²) — size the circuit accordingly.
CrossCheckResult cross_check_wd_engine(const RetimingGraph& g, WdQuery& wd,
                                       std::size_t samples = 16);

}  // namespace serelin
