#include "rgraph/retiming_graph.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace serelin {

RetimingGraph::RetimingGraph(const Netlist& nl, const CellLibrary& lib)
    : netlist_(&nl), library_(&lib) {
  SERELIN_REQUIRE(nl.finalized(), "RetimingGraph needs a finalized netlist");
  build(nl, lib);
  check_structure();
}

VertexId RetimingGraph::add_vertex(VertexKind kind, NodeId node, double delay) {
  const VertexId v = static_cast<VertexId>(vertices_.size());
  vertices_.push_back(RVertex{kind, node, delay});
  out_.emplace_back();
  in_.emplace_back();
  if (kind == VertexKind::kGate) gates_.push_back(v);
  return v;
}

EdgeId RetimingGraph::add_edge(VertexId from, VertexId to, std::int32_t w) {
  SERELIN_ASSERT(w >= 0, "edge weights are register counts and non-negative");
  const EdgeId e = static_cast<EdgeId>(edges_.size());
  edges_.push_back(REdge{from, to, w});
  out_[from].push_back(e);
  in_[to].push_back(e);
  return e;
}

void RetimingGraph::build(const Netlist& nl, const CellLibrary& lib) {
  vertex_of_.assign(nl.node_count(), kNullVertex);

  // Vertices: one per gate, one per input/constant, one sink per PO signal.
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    if (is_gate(n.type)) {
      vertex_of_[id] = add_vertex(VertexKind::kGate, id, lib.delay(n.type));
    } else if (n.type == CellType::kInput || n.type == CellType::kConst0 ||
               n.type == CellType::kConst1) {
      vertex_of_[id] = add_vertex(VertexKind::kSource, id, 0.0);
    }
    // DFFs get no vertex: chains collapse into edge weights below.
  }
  std::vector<VertexId> sink_of(nl.node_count(), kNullVertex);
  for (NodeId o : nl.outputs()) sink_of[o] = add_vertex(VertexKind::kSink, o, 0.0);

  // Edges: from every non-DFF node, walk forward through flip-flop chains.
  // Each DFF has exactly one fanin, so each DFF is reached from exactly one
  // root and the walk visits every absorbed DFF once overall.
  std::vector<bool> dff_seen(nl.node_count(), false);
  for (NodeId root = 0; root < nl.node_count(); ++root) {
    const Node& rn = nl.node(root);
    if (rn.type == CellType::kDff) continue;
    const VertexId vu = vertex_of_[root];
    // (node carrying the delayed signal, register depth from root)
    std::vector<std::pair<NodeId, std::int32_t>> stack{{root, 0}};
    while (!stack.empty()) {
      const auto [x, depth] = stack.back();
      stack.pop_back();
      if (sink_of[x] != kNullVertex) add_edge(vu, sink_of[x], depth);
      for (NodeId f : nl.node(x).fanouts) {
        const Node& fn = nl.node(f);
        if (fn.type == CellType::kDff) {
          dff_seen[f] = true;
          stack.emplace_back(f, depth + 1);
        } else {
          SERELIN_ASSERT(vertex_of_[f] != kNullVertex,
                         "fanout must be a gate vertex");
          add_edge(vu, vertex_of_[f], depth);
        }
      }
    }
  }
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).type == CellType::kDff && !dff_seen[id])
      throw ParseError("flip-flop '" + nl.node(id).name +
                       "' lies on a register-only cycle with no driver; "
                       "such floating state cannot be retimed");
  }
}

bool RetimingGraph::valid(const Retiming& r) const {
  if (r.size() != vertices_.size()) return false;
  for (VertexId v = 0; v < vertices_.size(); ++v)
    if (!movable(v) && r[v] != 0) return false;
  for (EdgeId e = 0; e < edges_.size(); ++e)
    if (wr(e, r) < 0) return false;
  return true;
}

std::int64_t RetimingGraph::total_edge_registers(const Retiming& r) const {
  std::int64_t total = 0;
  for (EdgeId e = 0; e < edges_.size(); ++e) total += wr(e, r);
  return total;
}

std::int64_t RetimingGraph::shared_register_count(const Retiming& r) const {
  std::int64_t total = 0;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    std::int32_t depth = 0;
    for (EdgeId e : out_[v]) depth = std::max(depth, wr(e, r));
    total += depth;
  }
  return total;
}

void RetimingGraph::check_structure() const {
  // Every directed cycle must carry a register, i.e. the zero-weight
  // subgraph must be acyclic. Kahn's algorithm over zero-weight edges.
  std::vector<std::uint32_t> pending(vertices_.size(), 0);
  for (const REdge& e : edges_)
    if (e.w == 0) ++pending[e.to];
  std::vector<VertexId> ready;
  for (VertexId v = 0; v < vertices_.size(); ++v)
    if (pending[v] == 0) ready.push_back(v);
  std::size_t processed = 0;
  while (!ready.empty()) {
    const VertexId v = ready.back();
    ready.pop_back();
    ++processed;
    for (EdgeId eid : out_[v]) {
      const REdge& e = edges_[eid];
      if (e.w == 0 && --pending[e.to] == 0) ready.push_back(e.to);
    }
  }
  SERELIN_ASSERT(processed == vertices_.size(),
                 "retiming graph has a register-free cycle");
}

}  // namespace serelin
