// Materializing a retiming: rebuild a netlist from a retiming graph and a
// retiming label.
//
// Registers are instantiated with the fanout-sharing model: all registers at
// a driver's output form one chain `drv$1, drv$2, ...` and each consumer
// taps the chain at its edge's register depth w_r. This is the structure
// whose flip-flop count RetimingGraph::shared_register_count() predicts.
//
// Initial states: the rebuilt flip-flops are implicitly zero-initialized
// (.bench carries no initial-state syntax). A retiming generally requires a
// *computed* equivalent initial state; forward retimings (r <= 0, the only
// kind serelin's optimizers produce) admit one constructively — see
// forward_initial_state() in src/sim/equivalence.hpp.
#pragma once

#include <string>

#include "rgraph/retiming_graph.hpp"

namespace serelin {

/// Rebuilds the circuit of `g` with registers relocated per `r`.
/// Requires g.valid(r). Primary-output port names follow the tapped signal
/// (the original PO name is kept only when no register crosses the PO).
Netlist apply_retiming(const RetimingGraph& g, const Retiming& r,
                       std::string circuit_name);

}  // namespace serelin
