#include "rgraph/apply.hpp"

#include <algorithm>

#include "netlist/builder.hpp"
#include "support/check.hpp"

namespace serelin {

Netlist apply_retiming(const RetimingGraph& g, const Retiming& r,
                       std::string circuit_name) {
  SERELIN_REQUIRE(g.valid(r), "apply_retiming needs a valid retiming");
  const Netlist& src = g.netlist();
  NetlistBuilder builder(std::move(circuit_name));

  // Signal name at register depth k of vertex v's output chain.
  auto tap_name = [&](VertexId v, std::int32_t k) -> std::string {
    const RVertex& vx = g.vertex(v);
    SERELIN_ASSERT(vx.node != kNullNode, "tap of a sink vertex");
    const std::string& base = src.node(vx.node).name;
    if (k == 0) return base;
    return base + "$" + std::to_string(k);
  };

  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const RVertex& vx = g.vertex(v);
    if (vx.kind == VertexKind::kSink) continue;
    const Node& n = src.node(vx.node);

    // The driver itself.
    switch (n.type) {
      case CellType::kInput:
        builder.input(n.name);
        break;
      case CellType::kConst0:
      case CellType::kConst1:
        builder.constant(n.name, n.type == CellType::kConst1);
        break;
      default: {
        SERELIN_ASSERT(is_gate(n.type), "unexpected driver type");
        // One in-edge per input pin, in pin order (all serelin gate types
        // are symmetric in their fanins, but we keep the order anyway).
        std::vector<std::string> fanins;
        fanins.reserve(g.in_edges(v).size());
        for (EdgeId eid : g.in_edges(v)) {
          const REdge& e = g.edge(eid);
          fanins.push_back(tap_name(e.from, g.wr(eid, r)));
        }
        SERELIN_ASSERT(fanins.size() == n.fanins.size(),
                       "pin count changed during graph round-trip");
        builder.gate(n.name, n.type, std::move(fanins));
        break;
      }
    }

    // Its shared register chain.
    std::int32_t depth = 0;
    for (EdgeId eid : g.out_edges(v)) depth = std::max(depth, g.wr(eid, r));
    for (std::int32_t k = 1; k <= depth; ++k)
      builder.dff(tap_name(v, k), tap_name(v, k - 1));
  }

  // Primary outputs: tap the driver chain at the edge's register depth.
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (g.vertex(v).kind != VertexKind::kSink) continue;
    SERELIN_ASSERT(g.in_edges(v).size() == 1, "a PO sink has one driver");
    const EdgeId eid = g.in_edges(v).front();
    builder.output(tap_name(g.edge(eid).from, g.wr(eid, r)));
  }

  return builder.build();
}

}  // namespace serelin
