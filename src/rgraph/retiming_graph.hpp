// The Leiserson–Saxe retiming graph G = (V, E, d, w).
//
// Vertices are the combinational gates of a netlist plus one *boundary*
// vertex per primary input, per primary output and per constant. Boundary
// vertices have zero delay and a pinned retiming label r = 0 — collectively
// they play the role of the classical "host" vertex while preserving the
// identity of each interface signal (needed for register sharing counts and
// for reconstructing a netlist after retiming).
//
// An edge (u, v) with weight w(u, v) >= 0 records a connection from u's
// output to one of v's input pins crossing w flip-flops. Flip-flop chains
// and trees of the source netlist are collapsed into edge weights; parallel
// edges are kept (a gate may consume the same signal on two pins, or reach
// the same consumer at different register depths).
//
// A retiming r : V -> Z (r = 0 on boundary vertices) relocates registers:
//   w_r(u, v) = w(u, v) + r(v) - r(u)                         [paper §III-A]
// Decreasing r(v) moves registers forward across v (from its fanins to its
// fanouts); this is the only move direction the optimizers in src/core use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"

namespace serelin {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;
inline constexpr VertexId kNullVertex = static_cast<VertexId>(-1);
inline constexpr EdgeId kNullEdge = static_cast<EdgeId>(-1);

enum class VertexKind : std::uint8_t {
  kGate,     ///< a combinational gate (movable)
  kSource,   ///< a primary input or constant (boundary; pinned r = 0)
  kSink,     ///< a primary output (boundary; pinned r = 0)
};

struct RVertex {
  VertexKind kind = VertexKind::kGate;
  NodeId node = kNullNode;  ///< originating netlist node (kNullNode for sinks)
  double delay = 0.0;       ///< d(v); zero for boundary vertices
};

struct REdge {
  VertexId from = kNullVertex;
  VertexId to = kNullVertex;
  std::int32_t w = 0;  ///< register count in the reference circuit
};

/// A retiming assignment. Index parallel to RetimingGraph vertices.
using Retiming = std::vector<std::int32_t>;

class RetimingGraph {
 public:
  /// Builds the graph of `nl` with delays from `lib`. The netlist must be
  /// finalized. Gate vertices keep a back-reference to their netlist node.
  RetimingGraph(const Netlist& nl, const CellLibrary& lib);

  std::size_t vertex_count() const { return vertices_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const RVertex& vertex(VertexId v) const { return vertices_[v]; }
  const REdge& edge(EdgeId e) const { return edges_[e]; }

  /// Edge ids leaving / entering `v`.
  const std::vector<EdgeId>& out_edges(VertexId v) const { return out_[v]; }
  const std::vector<EdgeId>& in_edges(VertexId v) const { return in_[v]; }

  bool movable(VertexId v) const {
    return vertices_[v].kind == VertexKind::kGate;
  }

  /// All gate vertex ids (movable set).
  const std::vector<VertexId>& gate_vertices() const { return gates_; }

  /// Vertex carrying netlist node `n`, or kNullVertex (e.g. for DFFs, which
  /// are collapsed into edge weights).
  VertexId vertex_of(NodeId n) const { return vertex_of_[n]; }

  /// The all-zero retiming (the reference circuit itself).
  Retiming zero_retiming() const { return Retiming(vertices_.size(), 0); }

  /// Registers on edge `e` under retiming `r`:  w + r(to) − r(from).
  std::int32_t wr(EdgeId e, const Retiming& r) const {
    const REdge& ed = edges_[e];
    return ed.w + r[ed.to] - r[ed.from];
  }

  /// True iff every edge has w_r >= 0 and boundary labels are 0 (paper P0).
  bool valid(const Retiming& r) const;

  /// Sum of w_r over all edges (the register-position count that the
  /// paper's observability objective Eq. (5) ranges over).
  std::int64_t total_edge_registers(const Retiming& r) const;

  /// Flip-flop count under the fanout-sharing model: registers at a
  /// driver's output form one shared chain, so the driver contributes
  /// max over its out-edges of w_r. This matches what reconstruction
  /// (apply_retiming) actually instantiates.
  std::int64_t shared_register_count(const Retiming& r) const;

  /// Verifies that the graph is a legal retiming graph (non-negative
  /// weights; every directed cycle has at least one register). Throws
  /// AssertionError otherwise. Called by the constructor; public for tests.
  void check_structure() const;

  const Netlist& netlist() const { return *netlist_; }
  const CellLibrary& library() const { return *library_; }

 private:
  VertexId add_vertex(VertexKind kind, NodeId node, double delay);
  EdgeId add_edge(VertexId from, VertexId to, std::int32_t w);
  void build(const Netlist& nl, const CellLibrary& lib);

  const Netlist* netlist_ = nullptr;
  const CellLibrary* library_ = nullptr;
  std::vector<RVertex> vertices_;
  std::vector<REdge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  std::vector<VertexId> gates_;
  std::vector<VertexId> vertex_of_;  // NodeId -> VertexId (gates & sources)
};

}  // namespace serelin
