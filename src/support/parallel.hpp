// Parallel execution substrate: a fixed-size thread pool and a static
// fan-out primitive with a determinism contract.
//
// Every parallel kernel in serelin is written against two rules (see
// docs/PARALLELISM.md for the full contract):
//
//  1. Each loop iteration owns a *disjoint slice* of the output — no shared
//     mutable accumulators inside a parallel region. Reductions are summed
//     in fixed index order after the region completes.
//  2. Any randomness inside an iteration comes from its own stream,
//     `stream_rng(seed, index)` — SplitMix64-derived, so the draw sequence
//     depends only on (seed, index), never on which worker ran it.
//
// Under those rules every kernel is bit-identical for any thread count,
// and `set_execution_threads(1)` reproduces the historical single-threaded
// behavior exactly (parallel_for then degenerates to a plain loop on the
// calling thread).
//
// Scheduling is *static chunking*: [begin, end) is cut into chunks of
// `grain` iterations and chunk c is pinned to worker lane c % workers.
// Nested parallel_for calls (a kernel invoked from inside another parallel
// region) run inline on the calling worker — parallelism never nests, so
// per-worker scratch indexed by the lane id stays race-free.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "support/annotations.hpp"
#include "support/deadline.hpp"
#include "support/rng.hpp"
#include "support/sync.hpp"

namespace serelin {

/// Number of hardware threads (>= 1 even when the runtime reports 0).
int hardware_threads();

/// Sets the global worker count for subsequent parallel regions.
/// `n` = 0 means "use hardware_threads()"; `n` = 1 disables threading.
void set_execution_threads(int n);

/// The resolved worker count (>= 1) the next parallel region will use.
int execution_threads();

/// Upper bound on the worker-lane index passed to parallel_for bodies;
/// size per-worker scratch arrays with this.
inline int parallel_workers() { return execution_threads(); }

/// Global execution configuration, applied by set_execution_threads and
/// consumed by tools (serelin_cli --threads N flows through here).
struct ExecutionConfig {
  /// Requested worker count; 0 = hardware concurrency.
  int threads = 0;
};

/// An independent deterministic RNG stream for parallel iteration `index`:
/// the state is SplitMix64-mixed from (seed, index), so streams are
/// decorrelated and depend only on the pair, never on thread assignment.
Rng stream_rng(std::uint64_t seed, std::uint64_t index);

/// Fixed-size pool of persistent worker threads. Lane 0 is the calling
/// thread; lanes 1..workers-1 are pool threads parked on a condition
/// variable between regions.
class ThreadPool {
 public:
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()) + 1; }

  /// Runs `body(lane)` on every lane (the caller participates as lane 0)
  /// and returns when all lanes finished. The first exception thrown by
  /// any lane is rethrown on the caller.
  void run(const std::function<void(int)>& body);

 private:
  void worker_loop(int lane);

  std::vector<std::thread> threads_;
  // The dispatch handshake. Everything the workers and the caller share is
  // guarded by mutex_; clang's -Wthread-safety proves it (see
  // support/annotations.hpp and docs/STATIC_ANALYSIS.md).
  Mutex mutex_;
  CondVar start_cv_;
  CondVar done_cv_;
  const std::function<void(int)>* body_ SERELIN_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t generation_ SERELIN_GUARDED_BY(mutex_) = 0;
  int pending_ SERELIN_GUARDED_BY(mutex_) = 0;
  bool stop_ SERELIN_GUARDED_BY(mutex_) = false;
};

namespace detail {

/// True while the calling thread is executing inside a parallel region;
/// nested regions run inline to keep lane-indexed scratch race-free.
bool in_parallel_region();

/// Static-chunked fan-out of [begin, end) with chunk size `grain` over the
/// configured workers; `body(chunk_begin, chunk_end, lane)` is called once
/// per chunk, chunks in increasing order within each lane.
void parallel_for_impl(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, int)>& body);

/// Guided fan-out: chunks come from a precomputed decreasing ladder (each
/// chunk = max(min_grain, remaining/64), a pure function of the range and
/// min_grain — never of the worker count) and idle lanes claim the next
/// chunk from a shared atomic cursor. Late small chunks absorb per-item
/// cost variance that static round-robin turns into lane starvation.
void parallel_for_guided_impl(
    std::size_t begin, std::size_t end, std::size_t min_grain,
    const std::function<void(std::size_t, std::size_t, int)>& body);

}  // namespace detail

/// Parallel loop over [begin, end): `fn(i, lane)` once per index, statically
/// chunked by `grain`. Bit-identical results for any thread count provided
/// fn obeys the disjoint-output contract above. With 1 worker (or when
/// called from inside another parallel region) this is a plain loop.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn&& fn) {
  detail::parallel_for_impl(
      begin, end, grain,
      [&fn](std::size_t b, std::size_t e, int lane) {
        for (std::size_t i = b; i < e; ++i) fn(i, lane);
      });
}

/// Deadline-aware parallel loop: every lane checks `deadline` before each
/// iteration and the first expiry aborts the whole region by throwing
/// CancelledError("<where>: ..."), rethrown on the calling thread. Use for
/// fan-outs whose per-iteration work is substantial (a Dijkstra source, a
/// full resimulation); tighter loops should poll a DeadlinePoller inside
/// the body instead. An unlimited deadline costs nothing.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const Deadline& deadline, const char* where, Fn&& fn) {
  if (deadline.unlimited()) {
    parallel_for(begin, end, grain, std::forward<Fn>(fn));
    return;
  }
  detail::parallel_for_impl(
      begin, end, grain,
      [&fn, &deadline, where](std::size_t b, std::size_t e, int lane) {
        for (std::size_t i = b; i < e; ++i) {
          deadline.check(where);
          fn(i, lane);
        }
      });
}

/// Guided-scheduling loop over [begin, end): `fn(i, lane)` once per index.
/// Chunk *assignment* to lanes is dynamic (work stealing from a shared
/// cursor), but the chunk boundaries are deterministic and each index
/// still owns a disjoint output slice, so results — and every
/// SERELIN_COUNT total — remain bit-identical for any thread count. Use
/// instead of parallel_for when per-index cost varies widely (e.g. exact
/// observability flips, whose fanout cones differ by orders of magnitude).
template <typename Fn>
void parallel_for_guided(std::size_t begin, std::size_t end,
                         std::size_t min_grain, Fn&& fn) {
  detail::parallel_for_guided_impl(
      begin, end, min_grain, [&fn](std::size_t b, std::size_t e, int lane) {
        for (std::size_t i = b; i < e; ++i) fn(i, lane);
      });
}

/// Deadline-aware guided loop (see the deadline overload of parallel_for).
template <typename Fn>
void parallel_for_guided(std::size_t begin, std::size_t end,
                         std::size_t min_grain, const Deadline& deadline,
                         const char* where, Fn&& fn) {
  if (deadline.unlimited()) {
    parallel_for_guided(begin, end, min_grain, std::forward<Fn>(fn));
    return;
  }
  detail::parallel_for_guided_impl(
      begin, end, min_grain,
      [&fn, &deadline, where](std::size_t b, std::size_t e, int lane) {
        for (std::size_t i = b; i < e; ++i) {
          deadline.check(where);
          fn(i, lane);
        }
      });
}

/// Chunk-granular variant for kernels that want the whole block at once
/// (e.g. a word-block of simulation patterns): `fn(chunk_begin, chunk_end,
/// lane)` per chunk.
template <typename Fn>
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         std::size_t grain, Fn&& fn) {
  detail::parallel_for_impl(
      begin, end, grain,
      [&fn](std::size_t b, std::size_t e, int lane) { fn(b, e, lane); });
}

}  // namespace serelin
