// Durable write primitives: the crash-safety substrate (docs/ROBUSTNESS.md
// §11).
//
// Two disciplines cover every artifact serelin produces:
//
//  * Whole-file replace — atomic_write_file writes `path + ".tmp"` in the
//    destination directory, fsyncs it, and renames it over `path`. A
//    reader therefore sees either the previous complete file or the new
//    complete file, never a torn mixture; a crash mid-write leaves only
//    the deterministic `.tmp` sibling, which the next writer overwrites
//    and recovery sweeps remove.
//  * Append-only journal — JournalWriter frames every record as
//    `LLLLLLLL CCCCCCCC payload\n` (8 hex digits of payload length, 8 hex
//    digits of CRC-32, one space each) and fsyncs per record. A torn tail
//    (partial frame, length/CRC mismatch, missing newline) is detected by
//    read_journal and truncated back to the last intact record by
//    recover_journal, so a resumed run appends after the recovery point.
//
// Both paths carry named crash points for tools/crash_harness: an armed
// countdown (crash_arm) SIGKILLs the process at the N-th crash point,
// including *between* the two halves of a journal frame write — the only
// way to manufacture genuinely torn records under test.
//
// Single-writer contract: one process writes a given artifact path at a
// time (the tools' scratch directories are per-run). The primitives do
// not lock files.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace serelin {

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF) — matches zlib's
/// crc32(), so journal frames can be cross-checked by standard tooling.
std::uint32_t crc32(std::string_view data);

/// Arms the crash-injection countdown: the process raises SIGKILL on
/// itself when the `countdown`-th crash point is reached. Non-positive
/// disarms. Test-only (tools/crash_harness); never armed in production.
void crash_arm(std::int64_t countdown);

/// Crash points traversed since the last crash_arm (armed or not) — the
/// calibration count the harness samples kill indices from.
std::int64_t crash_points_passed();

namespace detail {
/// One named crash-injection site; cheap (one relaxed load) when disarmed.
void crash_point(const char* site);
}  // namespace detail

/// Atomically replaces `path` with `content` (temp + fsync + rename).
/// Returns false on any failure, leaving the previous `path` intact;
/// never throws. `error`, when non-null, receives a description.
bool try_atomic_write_file(const std::string& path, std::string_view content,
                           std::string* error = nullptr) noexcept;

/// Throwing variant of try_atomic_write_file (serelin::Error).
void atomic_write_file(const std::string& path, std::string_view content);

/// Removes a stale `path + ".tmp"` left by a crash mid-replace (no-op when
/// absent). Recovery paths call this before trusting a directory clean.
void remove_stale_temp(const std::string& path);

/// Append-only framed journal writer over a POSIX fd, fsynced per record.
///
/// Failure policy mirrors RunJournal: failing to *open* throws (the caller
/// asked for a record we cannot produce); failing to *write* mid-run
/// degrades — healthy() goes false and later appends are swallowed, never
/// taking the run down.
class JournalWriter {
 public:
  enum class Mode : std::uint8_t {
    kTruncate,  ///< start a fresh journal
    kAppend,    ///< continue after recover_journal (resume)
  };

  /// Disabled writer: append() is a no-op, healthy() stays true.
  JournalWriter() = default;

  /// Opens `path` for writing. Throws serelin::Error on failure.
  JournalWriter(const std::string& path, Mode mode);
  ~JournalWriter();

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  bool enabled() const { return fd_ >= 0; }
  bool healthy() const { return healthy_; }
  const std::string& path() const { return path_; }

  /// Frames, writes and fsyncs one record. `payload` must not contain
  /// '\n' (JSONL payloads never do; asserted).
  void append(std::string_view payload);

 private:
  void close_fd() noexcept;

  std::string path_;
  int fd_ = -1;
  bool healthy_ = true;
};

/// What a journal read found: every intact record, where the intact prefix
/// ends, and why parsing stopped (when it did).
struct JournalRecovery {
  std::vector<std::string> records;  ///< payloads of intact records, in order
  std::uint64_t valid_bytes = 0;     ///< byte length of the intact prefix
  bool torn = false;   ///< trailing bytes past valid_bytes were damaged
  std::string detail;  ///< human-readable reason parsing stopped
};

/// Parses a framed journal, stopping at the first damaged frame. A missing
/// file yields an empty recovery (not an error); everything after the
/// first damaged byte is reported torn, conservatively — a mid-file flip
/// invalidates the records behind it too, since appends are strictly
/// ordered.
JournalRecovery read_journal(const std::string& path);

/// read_journal, then truncates the file to `valid_bytes` when torn (and
/// removes a stale rename temp), so a JournalWriter in kAppend mode
/// continues from the last intact record.
JournalRecovery recover_journal(const std::string& path);

/// Frames one payload exactly as JournalWriter::append writes it — shared
/// with tests and the torn-journal corpus generator.
std::string frame_journal_record(std::string_view payload);

}  // namespace serelin
