// Named solver/kernel counters with deterministic totals.
//
// Counters answer "how much work did this run do" — LP relaxations, forest
// rebuilds, ELW interval operations, simulator pattern-words — the numbers
// that tell which engine dominated a run (docs/OBSERVABILITY.md). The
// design constraints:
//
//  * Increments happen on hot paths (a Dijkstra pop, an interval merge),
//    so the fast path must be a handful of instructions: each thread owns
//    a plain thread-local block (single writer, no atomics), registered
//    once with the global registry.
//  * Totals must be *bit-identical for any thread count*: every increment
//    is attached to a unit of work (a source vertex, a pattern word, a
//    constraint), never to a lane or a scheduling decision, and integer
//    addition commutes exactly. metrics_snapshot() sums the thread blocks
//    in registration order.
//  * `cmake -DSERELIN_TRACE=OFF` compiles every SERELIN_COUNT site to
//    nothing, so the perf path can shed even the thread-local accesses.
//
// Snapshots subtract, so callers bracket a region of interest:
//
//   const MetricsSnapshot before = metrics_snapshot();
//   run_stage();
//   journal.set_json("metrics", metrics_json(metrics_snapshot() - before));
//
// metrics_snapshot() and metrics_reset() must be called outside parallel
// regions: parallel_for joins every lane before returning (a full
// happens-before edge), so between regions the thread blocks are quiescent
// and plain reads are race-free.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace serelin {

/// Every named counter. Names (counter_name) are stable: journals, metrics
/// files and the bench report key on them.
enum class Counter : std::uint16_t {
  kLpRelaxations,    ///< Bellman–Ford relaxations in the retiming LP
  kFeasPasses,       ///< FEAS passes of the min-period retimer
  kTimingPasses,     ///< GraphTiming::compute invocations
  kSolverIterations, ///< solver inner-loop iterations (forest + closure)
  kSolverCommits,    ///< committed improving moves
  kForestConstraints,///< active constraints folded into the regular forest
  kForestBreaks,     ///< BreakTree rebuilds
  kForestCuts,       ///< irregular-edge cuts during re-regularization
  kBundleGrowSteps,  ///< closure-solver bundle growth steps
  kWdSources,        ///< single-source W/D computations
  kWdHeapPops,       ///< Dijkstra heap pops during W/D construction
  kWdLazyQueries,    ///< point W/D lookups answered by the lazy query engine
  kWdRowsPruned,     ///< lazy per-source traversals cut by the period budget
  kIncrNodesTouched, ///< vertices relabeled by incremental timing updates
  kElwIntervalOps,   ///< interval-set ops (insert/unite/shift/clamp)
  kSimPatternWords,  ///< 64-pattern value words evaluated by the simulator
  kObsFlips,         ///< exact-observability flip-and-resimulate runs
  kSerTerms,         ///< per-cell Eq. (4) contribution terms
  kOracleChecks,     ///< oracle invariant checks executed
  kDeadlineSlices,   ///< pipeline stage deadline slices consumed
  kJournalWrites,    ///< JSONL journal lines written
  kGuidedChunks,     ///< chunks of the guided-scheduling ladder dispatched
  kServeJobs,        ///< retiming jobs executed by the job server
  kServeCacheHits,   ///< submissions answered from the server result cache
  kServeCacheMisses, ///< submissions that had to run the pipeline
  kCount
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Stable kebab-case name, e.g. "lp-relaxations".
const char* counter_name(Counter c);

/// A consistent copy of every counter total. Value type: snapshots
/// subtract to give per-region deltas.
struct MetricsSnapshot {
  std::array<std::int64_t, kCounterCount> values{};

  std::int64_t operator[](Counter c) const {
    return values[static_cast<std::size_t>(c)];
  }
  MetricsSnapshot operator-(const MetricsSnapshot& rhs) const {
    MetricsSnapshot out;
    for (std::size_t i = 0; i < kCounterCount; ++i)
      out.values[i] = values[i] - rhs.values[i];
    return out;
  }
  bool operator==(const MetricsSnapshot&) const = default;
};

/// One flat JSON object {"lp-relaxations": 0, ...} with every counter, in
/// enum order (stable for diffing and for the bench report).
std::string metrics_json(const MetricsSnapshot& snapshot);

/// Writes metrics_json(snapshot) (newline-terminated) to `path`; throws
/// serelin::Error on I/O failure.
void write_metrics_json(const MetricsSnapshot& snapshot,
                        const std::string& path);

#if SERELIN_TRACE_ENABLED

namespace detail {

/// The calling thread's counter block (registered on first use).
std::int64_t* metric_lane();

}  // namespace detail

/// Adds `n` to counter `c` on the calling thread's block. Hot-path safe:
/// one thread-local lookup and one plain add (single writer per block).
inline void metric_add(Counter c, std::int64_t n) {
  detail::metric_lane()[static_cast<std::size_t>(c)] += n;
}

/// Sums every registered thread block in registration order. Call outside
/// parallel regions (see the header comment).
MetricsSnapshot metrics_snapshot();

/// Zeroes every registered block. Call outside parallel regions only.
void metrics_reset();

#else  // !SERELIN_TRACE_ENABLED — compiled-out stubs, zero overhead

inline void metric_add(Counter, std::int64_t) {}
inline MetricsSnapshot metrics_snapshot() { return {}; }
inline void metrics_reset() {}

#endif

/// True when the library was built with SERELIN_TRACE=ON.
constexpr bool metrics_compiled_in() { return SERELIN_TRACE_ENABLED != 0; }

}  // namespace serelin

/// Instrumentation macro: compiles to nothing under SERELIN_TRACE=OFF.
/// `counter` is the bare enumerator name, e.g. SERELIN_COUNT(kWdHeapPops, 1).
#if SERELIN_TRACE_ENABLED
#define SERELIN_COUNT(counter, n) \
  ::serelin::metric_add(::serelin::Counter::counter, (n))
#else
// sizeof keeps `n` (and any locals it reads) formally used without
// evaluating it, so OFF builds stay warning-clean under -Werror.
#define SERELIN_COUNT(counter, n) \
  ((void)sizeof(::serelin::Counter::counter), (void)sizeof(n))
#endif
