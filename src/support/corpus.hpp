// Counterexample-corpus persistence shared by the robustness harnesses
// (tools/fault_harness, tools/fuzz_solvers).
//
// Every persisted counterexample is named by a stable content hash of its
// payload, so re-finding the same input — across CI runs, seeds, or
// machines — lands on the same file name and the corpus never accumulates
// duplicate repros. A sidecar `<name>.repro` carries the reproduction
// recipe (free-form key: value lines; the fuzz harness additionally stores
// a replayable config block, see docs/ROBUSTNESS.md §10).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace serelin {

/// FNV-1a 64-bit over `text`. Stable across platforms and runs (no seed),
/// which is exactly what corpus dedup needs; not cryptographic.
std::uint64_t content_hash(std::string_view text);

/// Lower-case 16-hex-digit rendering of a hash.
std::string hash_hex(std::uint64_t h);

struct PersistResult {
  std::string path;     ///< full path of the persisted (or existing) file
  bool deduplicated = false;  ///< an identical entry already existed
};

/// Writes `text` to `<dir>/<prefix>-<hash16><ext>` (creating `dir` as
/// needed) and `sidecar` to `<file>.repro`. When the target file already
/// exists with any content (hash collisions on equal names are treated as
/// the same finding), nothing is rewritten and `deduplicated` is true.
/// `ext` includes the dot (".bench"). Never throws: filesystem errors are
/// reported by an empty `path`.
PersistResult persist_counterexample(const std::string& dir,
                                     const std::string& prefix,
                                     const std::string& ext,
                                     const std::string& text,
                                     const std::string& sidecar);

}  // namespace serelin
