#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace serelin {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SERELIN_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  SERELIN_REQUIRE(cells.size() == headers_.size(),
                  "row arity must match the header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_percent(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f%%", v * 100.0);
  return buf;
}

std::string fmt_sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2E", v);
  return buf;
}

}  // namespace serelin
