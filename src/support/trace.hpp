// Scoped tracing spans with a Chrome trace_event exporter.
//
// A span brackets one phase of work — a solver pass, an observability
// sweep, a pipeline stage — and records {name, start, duration, depth} on
// the thread that ran it. Spans nest by construction order (RAII), so the
// exported trace shows the real call structure: load the JSON in
// chrome://tracing or https://ui.perfetto.dev and the solver/ELW/simulation
// phases appear as nested slices per thread. Naming conventions and the
// exporter schema are documented in docs/OBSERVABILITY.md.
//
// Cost model:
//  * Tracing is OFF at runtime until Tracer::start(); a dormant span is
//    one relaxed atomic load.
//  * `cmake -DSERELIN_TRACE=OFF` compiles SERELIN_SPAN sites to nothing
//    and turns Tracer into an inert shell (chrome_json() stays valid but
//    empty), so the perf path carries zero instrumentation.
//  * Span names must be string literals (the tracer stores the pointer).
//
// Aggregation is per-thread buffers — lane 0 is the calling thread,
// worker lanes append to their own buffers — merged in registration
// (lane) order at export time. Start/stop/export must happen outside
// parallel regions: parallel_for joins every lane before returning, so
// between regions the buffers are quiescent.
#pragma once

#include <cstdint>
#include <string>

namespace serelin {

/// Global tracing session. All methods are static: there is one tracer
/// per process, matching the one thread pool per process.
class Tracer {
 public:
  /// True between start() and stop(): spans record themselves.
  static bool active();

  /// Clears every span buffer, re-zeroes the clock and enables recording.
  static void start();

  /// Stops recording (buffers keep their events for export).
  static void stop();

  /// Number of recorded events across all threads.
  static std::size_t event_count();

  /// The whole session as Chrome trace_event JSON (always valid JSON,
  /// `{"traceEvents": []}`-shaped when nothing was recorded).
  static std::string chrome_json();

  /// Writes chrome_json() to `path`; throws serelin::Error on I/O failure.
  static void write_chrome_json(const std::string& path);
};

#if SERELIN_TRACE_ENABLED

/// RAII span: records one complete trace event from construction to
/// destruction on the current thread. `name` must be a string literal.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  ///< null = tracer was dormant at entry
  std::uint64_t start_ns_ = 0;
  std::int32_t depth_ = 0;
};

#else

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif

/// True when the library was built with SERELIN_TRACE=ON.
constexpr bool trace_compiled_in() { return SERELIN_TRACE_ENABLED != 0; }

}  // namespace serelin

#define SERELIN_TRACE_CAT2(a, b) a##b
#define SERELIN_TRACE_CAT(a, b) SERELIN_TRACE_CAT2(a, b)

/// Scoped span macro: compiles to nothing under SERELIN_TRACE=OFF.
#if SERELIN_TRACE_ENABLED
#define SERELIN_SPAN(name) \
  ::serelin::TraceSpan SERELIN_TRACE_CAT(serelin_span_, __LINE__)(name)
#else
// sizeof keeps `name` formally used without evaluating it (warning-clean
// under -Werror when the name comes from a helper function).
#define SERELIN_SPAN(name) ((void)sizeof(name))
#endif
