#include "support/deadline.hpp"

#include <cmath>
#include <limits>

namespace serelin {

const char* stop_reason_name(StopReason r) {
  switch (r) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "none";
}

Deadline Deadline::after(double seconds) {
  Deadline d;
  d.timed_ = true;
  d.at_ = Clock::now() +
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(seconds > 0 ? seconds : 0));
  return d;
}

Deadline Deadline::with_token(CancelToken token) {
  Deadline d;
  d.flag_ = std::move(token.flag_);
  return d;
}

Deadline& Deadline::attach(CancelToken token) {
  flag_ = std::move(token.flag_);
  return *this;
}

StopReason Deadline::status() const {
  if (flag_ && flag_->load(std::memory_order_relaxed))
    return StopReason::kCancelled;
  if (timed_ && Clock::now() >= at_) return StopReason::kDeadline;
  return StopReason::kNone;
}

double Deadline::remaining_seconds() const {
  if (flag_ && flag_->load(std::memory_order_relaxed)) return 0.0;
  if (!timed_) return std::numeric_limits<double>::infinity();
  const double left =
      std::chrono::duration<double>(at_ - Clock::now()).count();
  return left > 0 ? left : 0.0;
}

Deadline Deadline::slice(double seconds) const {
  Deadline d = *this;  // keeps the token and any existing expiry
  if (std::isfinite(seconds)) {
    const auto at = Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            seconds > 0 ? seconds : 0));
    if (!d.timed_ || at < d.at_) d.at_ = at;
    d.timed_ = true;
  }
  return d;
}

void Deadline::check(const char* where) const {
  const StopReason r = status();
  if (r == StopReason::kNone) return;
  throw CancelledError(
      r, std::string(where) + ": stopped (" + stop_reason_name(r) + ")");
}

}  // namespace serelin
