#include "support/signals.hpp"

#include <atomic>
#include <csignal>

#include "support/check.hpp"

namespace serelin {

namespace {

// The handler reads these; SignalGuard's constructor is the only writer
// and installs them before the handlers (release/acquire not needed:
// signal delivery on the installing thread is already ordered, and
// cross-thread delivery only races toward a benign no-op).
std::atomic<std::atomic<bool>*> g_cancel_flag{nullptr};
std::atomic<int> g_signals_seen{0};
struct sigaction g_prev_int;
struct sigaction g_prev_term;
bool g_installed = false;

void on_signal(int sig) {
  if (g_signals_seen.fetch_add(1, std::memory_order_relaxed) > 0) {
    // Second signal: the operator insists. Die the conventional way.
    ::signal(sig, SIG_DFL);
    ::raise(sig);
    return;
  }
  if (std::atomic<bool>* flag = g_cancel_flag.load(std::memory_order_relaxed))
    flag->store(true, std::memory_order_relaxed);
}

}  // namespace

SignalGuard::SignalGuard(CancelToken token) : token_(token) {
  SERELIN_REQUIRE(!g_installed, "only one SignalGuard may be live");
  g_installed = true;
  g_signals_seen.store(0, std::memory_order_relaxed);
  // Publish the token's flag for the handler. The CancelToken member keeps
  // the shared_ptr (and thus the atomic) alive for the guard's lifetime.
  g_cancel_flag.store(token_.flag(), std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, &g_prev_int);
  ::sigaction(SIGTERM, &sa, &g_prev_term);
}

SignalGuard::~SignalGuard() {
  ::sigaction(SIGINT, &g_prev_int, nullptr);
  ::sigaction(SIGTERM, &g_prev_term, nullptr);
  g_cancel_flag.store(nullptr, std::memory_order_relaxed);
  g_installed = false;
}

bool SignalGuard::interrupted() const {
  return g_signals_seen.load(std::memory_order_relaxed) > 0;
}

}  // namespace serelin
