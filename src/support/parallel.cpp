#include "support/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "support/check.hpp"
#include "support/metrics.hpp"

namespace serelin {

namespace {

std::atomic<int> g_requested_threads{0};  // 0 = hardware concurrency

thread_local bool tl_in_region = false;

}  // namespace

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void set_execution_threads(int n) {
  SERELIN_REQUIRE(n >= 0, "thread count must be >= 0 (0 = hardware)");
  g_requested_threads.store(n, std::memory_order_relaxed);
}

int execution_threads() {
  const int n = g_requested_threads.load(std::memory_order_relaxed);
  return n == 0 ? hardware_threads() : n;
}

Rng stream_rng(std::uint64_t seed, std::uint64_t index) {
  // Two SplitMix64 steps fold the index into the seed so that nearby
  // (seed, index) pairs yield decorrelated generator states; the Rng
  // constructor then runs its own SplitMix64 expansion on top.
  std::uint64_t s = seed;
  splitmix64(s);
  s ^= index;
  return Rng(splitmix64(s));
}

ThreadPool::ThreadPool(int workers) {
  SERELIN_REQUIRE(workers >= 1, "a pool needs at least one worker");
  threads_.reserve(static_cast<std::size_t>(workers - 1));
  for (int lane = 1; lane < workers; ++lane)
    threads_.emplace_back([this, lane] { worker_loop(lane); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::run(const std::function<void(int)>& body) {
  if (threads_.empty()) {
    body(0);
    return;
  }
  {
    MutexLock lock(mutex_);
    body_ = &body;
    pending_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  body(0);  // the caller is lane 0
  MutexLock lock(mutex_);
  while (pending_ != 0) done_cv_.wait(mutex_);
  body_ = nullptr;
}

void ThreadPool::worker_loop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* body = nullptr;
    {
      MutexLock lock(mutex_);
      while (!stop_ && generation_ == seen) start_cv_.wait(mutex_);
      if (stop_) return;
      seen = generation_;
      body = body_;
    }
    (*body)(lane);
    {
      MutexLock lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

namespace detail {

bool in_parallel_region() { return tl_in_region; }

namespace {

/// Lazily grown process-wide pool. Guarded by a mutex: serelin's parallel
/// regions are issued from one orchestrating thread at a time, but two
/// independent callers must not interleave lane dispatch on one pool.
Mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool SERELIN_GUARDED_BY(g_pool_mutex);

ThreadPool& shared_pool(int workers) SERELIN_REQUIRES(g_pool_mutex) {
  if (!g_pool || g_pool->workers() < workers)
    g_pool = std::make_unique<ThreadPool>(workers);
  return *g_pool;
}

}  // namespace

void parallel_for_impl(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, int)>& body) {
  if (begin >= end) return;
  const std::size_t g = std::max<std::size_t>(1, grain);
  const std::size_t total = end - begin;
  const std::size_t nchunks = (total + g - 1) / g;

  auto run_chunks = [&](std::size_t first_chunk, std::size_t stride,
                        int lane) {
    for (std::size_t c = first_chunk; c < nchunks; c += stride) {
      const std::size_t b = begin + c * g;
      const std::size_t e = std::min(end, b + g);
      body(b, e, lane);
    }
  };

  const int workers = execution_threads();
  if (workers <= 1 || nchunks <= 1 || tl_in_region) {
    // Single-threaded, trivially small, or nested: a plain inline loop on
    // the calling lane. (Nested regions inline so per-lane scratch of the
    // outer region is never shared.)
    run_chunks(0, 1, 0);
    return;
  }

  std::exception_ptr first_error;
  Mutex error_mutex;
  const int lanes = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(workers), nchunks));
  {
    MutexLock pool_lock(g_pool_mutex);
    ThreadPool& pool = shared_pool(workers);
    pool.run([&](int lane) {
      if (lane >= lanes) return;
      tl_in_region = true;
      try {
        run_chunks(static_cast<std::size_t>(lane), lanes, lane);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      tl_in_region = false;
    });
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for_guided_impl(
    std::size_t begin, std::size_t end, std::size_t min_grain,
    const std::function<void(std::size_t, std::size_t, int)>& body) {
  if (begin >= end) return;
  const std::size_t g = std::max<std::size_t>(1, min_grain);

  // The chunk ladder depends only on (range, min_grain) — computing it up
  // front (rather than carving chunks as lanes go idle) is what keeps the
  // schedule, and every per-chunk counter, independent of the worker
  // count. Chunks shrink toward the tail, so a lane stuck on an expensive
  // item near the end holds at most min_grain items hostage.
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  std::size_t pos = begin;
  while (pos < end) {
    const std::size_t size = std::max(g, (end - pos) / 64);
    const std::size_t e = std::min(end, pos + size);
    chunks.emplace_back(pos, e);
    pos = e;
  }
  SERELIN_COUNT(kGuidedChunks, static_cast<std::int64_t>(chunks.size()));

  const int workers = execution_threads();
  if (workers <= 1 || chunks.size() <= 1 || tl_in_region) {
    for (const auto& [b, e] : chunks) body(b, e, 0);
    return;
  }

  // Dynamic assignment: each idle lane claims the next unclaimed chunk.
  // Outputs stay disjoint per index, so which lane ran a chunk is
  // unobservable in the results.
  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  Mutex error_mutex;
  // The shared pool may hold more lanes than the configured worker count
  // (it grows to the largest request and is reused); excess lanes must
  // not participate — callers size per-lane scratch by parallel_workers().
  const int lanes = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(workers), chunks.size()));
  {
    MutexLock pool_lock(g_pool_mutex);
    ThreadPool& pool = shared_pool(workers);
    pool.run([&](int lane) {
      if (lane >= lanes) return;
      tl_in_region = true;
      try {
        for (;;) {
          const std::size_t c =
              cursor.fetch_add(1, std::memory_order_relaxed);
          if (c >= chunks.size()) break;
          body(chunks[c].first, chunks[c].second, lane);
        }
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      tl_in_region = false;
    });
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

}  // namespace serelin
