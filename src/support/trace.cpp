#include "support/trace.hpp"

#include "support/atomic_io.hpp"
#include "support/check.hpp"

#if SERELIN_TRACE_ENABLED

#include <atomic>
#include <chrono>
#include <vector>

#include "support/annotations.hpp"
#include "support/sync.hpp"

namespace serelin {

namespace {

struct Event {
  const char* name;
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;
  std::int32_t depth;
};

/// Per-thread span storage. Owned by the registry (a thread that exits
/// leaves its events behind for export); tid is the registration index,
/// so export order is deterministic given a deterministic thread pool.
struct EventBuffer {
  int tid = 0;
  std::int32_t depth = 0;
  std::vector<Event> events;
};

struct Registry {
  Mutex mutex;
  /// Registration (tid) order. The *vector* is guarded; the pointed-to
  /// buffers are single-writer (each thread appends only to its own) and
  /// only read at start/export time, outside parallel regions, when the
  /// lanes have joined and the buffers are quiescent.
  std::vector<EventBuffer*> buffers SERELIN_GUARDED_BY(mutex);
  /// Session origin as nanoseconds since the steady_clock epoch. Atomic,
  /// not guarded: now_ns() reads it on the span hot path where taking the
  /// registry lock would serialize all tracing threads.
  std::atomic<std::int64_t> t0_ns{0};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

std::atomic<bool> g_active{false};

EventBuffer* register_buffer() {
  auto* buffer = new EventBuffer();
  Registry& r = registry();
  const MutexLock lock(r.mutex);
  buffer->tid = static_cast<int>(r.buffers.size());
  r.buffers.push_back(buffer);
  return buffer;
}

EventBuffer& local_buffer() {
  thread_local EventBuffer* buffer = register_buffer();
  return *buffer;
}

std::uint64_t now_ns() {
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return static_cast<std::uint64_t>(
      now - registry().t0_ns.load(std::memory_order_relaxed));
}

/// Span names are string literals under our control, but escape anyway so
/// a stray quote can never corrupt the export.
void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

}  // namespace

TraceSpan::TraceSpan(const char* name) {
  if (!Tracer::active()) return;
  name_ = name;
  EventBuffer& buffer = local_buffer();
  depth_ = buffer.depth++;
  start_ns_ = now_ns();
}

TraceSpan::~TraceSpan() {
  if (!name_) return;
  const std::uint64_t end_ns = now_ns();
  EventBuffer& buffer = local_buffer();
  --buffer.depth;
  buffer.events.push_back({name_, start_ns_, end_ns - start_ns_, depth_});
}

bool Tracer::active() { return g_active.load(std::memory_order_relaxed); }

void Tracer::start() {
  Registry& r = registry();
  const MutexLock lock(r.mutex);
  for (EventBuffer* buffer : r.buffers) {
    buffer->events.clear();
    buffer->depth = 0;
  }
  r.t0_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count(),
                std::memory_order_relaxed);
  g_active.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { g_active.store(false, std::memory_order_relaxed); }

std::size_t Tracer::event_count() {
  Registry& r = registry();
  const MutexLock lock(r.mutex);
  std::size_t n = 0;
  for (const EventBuffer* buffer : r.buffers) n += buffer->events.size();
  return n;
}

std::string Tracer::chrome_json() {
  Registry& r = registry();
  const MutexLock lock(r.mutex);
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const EventBuffer* buffer : r.buffers) {
    for (const Event& e : buffer->events) {
      out += first ? "\n" : ",\n";
      first = false;
      // Complete events ("ph": "X"); ts/dur are microseconds per the
      // trace_event spec, fractional for sub-microsecond spans.
      out += "  {\"name\": \"";
      append_escaped(out, e.name);
      out += "\", \"cat\": \"serelin\", \"ph\": \"X\", \"ts\": ";
      out += std::to_string(static_cast<double>(e.ts_ns) / 1e3);
      out += ", \"dur\": ";
      out += std::to_string(static_cast<double>(e.dur_ns) / 1e3);
      out += ", \"pid\": 1, \"tid\": ";
      out += std::to_string(buffer->tid);
      out += ", \"args\": {\"depth\": ";
      out += std::to_string(e.depth);
      out += "}}";
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

}  // namespace serelin

#else  // !SERELIN_TRACE_ENABLED — inert shell, still valid output

namespace serelin {

bool Tracer::active() { return false; }
void Tracer::start() {}
void Tracer::stop() {}
std::size_t Tracer::event_count() { return 0; }
std::string Tracer::chrome_json() {
  return "{\"traceEvents\": [], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace serelin

#endif  // SERELIN_TRACE_ENABLED

namespace serelin {

void Tracer::write_chrome_json(const std::string& path) {
  // Atomic replace: a crash mid-write never leaves a truncated trace that
  // chrome://tracing half-loads.
  atomic_write_file(path, chrome_json());
}

}  // namespace serelin
