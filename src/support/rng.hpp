// Deterministic, seedable pseudo-random number generation.
//
// Everything in serelin that uses randomness (pattern simulation, synthetic
// benchmark generation, property tests) takes an explicit Rng so runs are
// reproducible bit-for-bit across platforms. The generator is xoshiro256**
// seeded via SplitMix64, which is both fast and of good statistical quality
// for simulation workloads.
#pragma once

#include <cstdint>
#include <limits>

namespace serelin {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL);

  /// Next 64 uniformly random bits.
  std::uint64_t next();

  std::uint64_t operator()() { return next(); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform();

  /// Bernoulli draw with probability p of true.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace serelin
