// Annotated synchronization primitives for clang thread-safety analysis.
//
// libstdc++'s std::mutex carries no capability annotations, so
// `-Wthread-safety` cannot reason about code that uses it directly. These
// thin wrappers restore the analysis: `Mutex` is an annotated capability,
// `MutexLock` the scoped acquire/release, and `CondVar` a condition
// variable whose wait() is checked to run with the mutex held. All three
// are zero-overhead veneers over the std primitives (CondVar::wait adopts
// the already-held std::mutex for the duration of the std wait).
//
// Usage pattern (see support/parallel.cpp for the real thing):
//
//   Mutex mutex_;
//   int pending_ SERELIN_GUARDED_BY(mutex_) = 0;
//   CondVar done_cv_;
//   ...
//   MutexLock lock(mutex_);
//   while (pending_ != 0) done_cv_.wait(mutex_);
//
// Spurious wakeups are possible (std::condition_variable semantics), so
// waits must always sit in a predicate loop as above.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "support/annotations.hpp"

namespace serelin {

/// An annotated std::mutex: clang's thread-safety analysis tracks it as a
/// capability, so members declared SERELIN_GUARDED_BY(a Mutex) are
/// compile-time checked to be accessed only under the lock.
class SERELIN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SERELIN_ACQUIRE() { m_.lock(); }
  void unlock() SERELIN_RELEASE() { m_.unlock(); }
  bool try_lock() SERELIN_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;  // wait() adopts the underlying std::mutex
  std::mutex m_;
};

/// RAII lock for Mutex; the analysis knows the capability is held between
/// construction and destruction.
class SERELIN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SERELIN_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SERELIN_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with Mutex. wait() must be called with the
/// mutex held (checked); it atomically releases for the std wait and
/// reacquires before returning, like std::condition_variable::wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One blocking wait; callers loop on their predicate around this.
  void wait(Mutex& mutex) SERELIN_REQUIRES(mutex) {
    std::unique_lock<std::mutex> relock(mutex.m_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();  // ownership stays with the caller's MutexLock
  }

  /// One bounded wait: returns after a notify, a spurious wakeup, or at
  /// most `ms` milliseconds — callers loop on their predicate exactly as
  /// with wait(). Used where a blocked thread must also notice a flag no
  /// notifier is obligated to signal (server drain, job-delay holds).
  void wait_for(Mutex& mutex, std::chrono::milliseconds ms)
      SERELIN_REQUIRES(mutex) {
    std::unique_lock<std::mutex> relock(mutex.m_, std::adopt_lock);
    cv_.wait_for(relock, ms);
    relock.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace serelin
