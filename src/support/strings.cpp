#include "support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace serelin {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s,
                                    std::string_view delims) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find_first_of(delims, pos);
    const std::size_t end = (next == std::string_view::npos) ? s.size() : next;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t> parse_int(std::string_view s, std::int64_t lo,
                                      std::int64_t hi) {
  std::int64_t value = 0;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, value);
  if (ec != std::errc{} || ptr != end || s.empty()) return std::nullopt;
  if (value < lo || value > hi) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_uint(std::string_view s) {
  std::uint64_t value = 0;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, value);
  if (ec != std::errc{} || ptr != end || s.empty()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  double value = 0.0;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, value);
  if (ec != std::errc{} || ptr != end || s.empty()) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

}  // namespace serelin
