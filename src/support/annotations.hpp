// Clang thread-safety analysis annotations.
//
// serelin's parallel substrate promises bit-deterministic results for any
// thread count (docs/PARALLELISM.md). Part of that contract is lock
// discipline in the few places that *do* share mutable state — the thread
// pool handshake, the tracer/metrics registries — and lock discipline is
// exactly what clang's `-Wthread-safety` analysis proves at compile time:
// every access to a `SERELIN_GUARDED_BY(mu)` member must happen while `mu`
// is held, every `SERELIN_REQUIRES(mu)` function must be called with `mu`
// held, and lock/unlock pairing is checked on all paths.
//
// The macros expand to clang's capability attributes under clang and to
// nothing elsewhere, so gcc builds are unaffected. The analysis runs as an
// *error* in the clang CI lane (`serelin_warnings` adds
// `-Werror=thread-safety`; see the `static` job in .github/workflows/ci.yml
// and docs/STATIC_ANALYSIS.md).
//
// std::mutex is not an annotated capability type in libstdc++, so code
// that wants the analysis uses the annotated wrappers in
// support/sync.hpp (serelin::Mutex / MutexLock / CondVar) instead.
#pragma once

#if defined(__clang__)
#define SERELIN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SERELIN_THREAD_ANNOTATION(x)  // no-op on gcc and others
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define SERELIN_CAPABILITY(name) \
  SERELIN_THREAD_ANNOTATION(capability(name))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define SERELIN_SCOPED_CAPABILITY \
  SERELIN_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define SERELIN_GUARDED_BY(x) SERELIN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define SERELIN_PT_GUARDED_BY(x) SERELIN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only while the listed capabilities are held.
#define SERELIN_REQUIRES(...) \
  SERELIN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the listed capabilities (held on return).
#define SERELIN_ACQUIRE(...) \
  SERELIN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities.
#define SERELIN_RELEASE(...) \
  SERELIN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires on a given return value (try_lock style).
#define SERELIN_TRY_ACQUIRE(...) \
  SERELIN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be called while the listed capabilities are held.
#define SERELIN_EXCLUDES(...) \
  SERELIN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch: disables the analysis for one function. Every use needs a
/// justification comment (enforced by review, not tooling).
#define SERELIN_NO_THREAD_SAFETY_ANALYSIS \
  SERELIN_THREAD_ANNOTATION(no_thread_safety_analysis)
