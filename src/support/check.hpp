// Error-handling primitives for serelin.
//
// The library distinguishes three failure classes:
//  * programming errors (broken invariants)           -> SERELIN_ASSERT
//  * precondition violations on public API            -> SERELIN_REQUIRE
//  * malformed external input (files, command lines)  -> ParseError
//
// All throw exceptions derived from serelin::Error so callers can catch one
// type at tool boundaries.
#pragma once

#include <stdexcept>
#include <string>

namespace serelin {

/// Base class of every exception thrown by the library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Broken internal invariant: indicates a bug in serelin itself.
class AssertionError : public Error {
 public:
  using Error::Error;
};

/// A public-API precondition was violated by the caller.
class PreconditionError : public Error {
 public:
  using Error::Error;
};

/// Malformed external input (e.g. a .bench file that does not parse).
class ParseError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void throw_assertion(const char* expr, const char* file, int line,
                                  const std::string& msg);
[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
}  // namespace detail

}  // namespace serelin

/// Internal invariant check; always on (the algorithms here are subtle and
/// the cost is negligible next to the graph traversals they guard).
#define SERELIN_ASSERT(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::serelin::detail::throw_assertion(#expr, __FILE__, __LINE__,   \
                                         (msg));                     \
    }                                                                 \
  } while (false)

/// Public-API precondition check.
#define SERELIN_REQUIRE(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::serelin::detail::throw_precondition(#expr, __FILE__, __LINE__, \
                                            (msg));                   \
    }                                                                  \
  } while (false)
