// Diagnostics engine: accumulate-don't-abort error reporting for the
// front end (parsers, builder, lint) and any other layer that wants to
// report several problems per run instead of throwing on the first one.
//
// A Diagnostic is one structured finding: severity, a stable machine code
// (diag_code_name gives the spelled-out form tools and tests match on),
// an optional file/line/column anchor and a human message. Callers thread
// a DiagnosticSink through the code that can fail; the existing Error
// hierarchy in support/check.hpp stays the hard boundary — strict callers
// convert an error-bearing sink into a single DiagnosticError (a
// ParseError subclass) carrying the full list via throw_if_errors().
//
// See docs/ROBUSTNESS.md for the complete failure taxonomy.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace serelin {

enum class Severity : std::uint8_t {
  kNote,     ///< context attached to a preceding warning/error
  kWarning,  ///< suspicious but recoverable; repair may apply
  kError,    ///< the input is wrong; recovery substitutes a best effort
};

const char* severity_name(Severity s);

/// Stable machine-readable diagnostic codes. The spelled-out names
/// (diag_code_name) are part of the tool contract: tests and orchestration
/// scripts match on them, so existing codes must not be renamed.
enum class DiagCode : std::uint16_t {
  // -- I/O ----------------------------------------------------------------
  kIoNotFound,     ///< path does not exist
  kIoUnreadable,   ///< path exists but cannot be opened for reading
  kIoStreamError,  ///< read failed mid-stream (in.bad() after the loop)
  // -- lexical ------------------------------------------------------------
  kBadByte,  ///< non-ASCII / control bytes where text was expected
  // -- .bench -------------------------------------------------------------
  kBenchSyntax,            ///< line does not match the .bench grammar
  kBenchUnknownDirective,  ///< directive other than INPUT/OUTPUT
  kBenchUnknownGate,       ///< unrecognized gate keyword
  kBenchArity,             ///< wrong argument count for the construct
  // -- BLIF ---------------------------------------------------------------
  kBlifSyntax,       ///< malformed .latch / .names / cover row
  kBlifUnsupported,  ///< construct outside the supported subset
  kBlifCover,        ///< cover is not a recognized gate function
  kBlifMissingEnd,   ///< file ended without .end
  // -- structure (recovering NetlistBuilder) ------------------------------
  kNetMultiplyDriven,  ///< signal defined more than once (first wins)
  kNetUndefined,       ///< referenced signal never defined (input synthesized)
  kNetDffMissingDriver,  ///< flip-flop D references an undefined signal
  kNetCombCycle,       ///< combinational cycle (broken at one member)
  kNetBadArity,        ///< malformed declaration (arity / empty name)
  // -- lint (netlist/validate) --------------------------------------------
  kLintDanglingNet,   ///< non-output node that nothing consumes
  kLintUnreferenced,  ///< gate outside every output/state cone
  kLintUnusedInput,   ///< primary input that nothing consumes
  kLintNoOutputs,     ///< circuit has no primary outputs
  // -- result verification (check/oracle) ---------------------------------
  kOracleLegality,   ///< retiming violates Eq. 1 (w_r < 0 / boundary moved)
  kOraclePeriod,     ///< a combinational path exceeds Φ − Ts
  kOracleElw,        ///< a register's ELW breaks the R_min constraint
  kOracleObjective,  ///< reported objective/SER disagrees with recomputation
};

/// Kebab-case name of `code`, e.g. "bench-syntax". Stable across releases.
const char* diag_code_name(DiagCode code);

/// One structured finding.
struct Diagnostic {
  Severity severity = Severity::kError;
  DiagCode code = DiagCode::kBenchSyntax;
  std::string file;  ///< origin file; empty for in-memory streams
  int line = 0;      ///< 1-based; 0 = not line-anchored
  int col = 0;       ///< 1-based; 0 = not column-anchored
  std::string message;

  /// "file:line: error[bench-syntax]: message" (parts omitted when unset).
  std::string render() const;
};

/// Accumulates diagnostics. Not thread-safe: one sink per parse/lint run.
/// A cap bounds memory on adversarial inputs; findings past the cap are
/// counted but not stored (summary() reports the overflow).
class DiagnosticSink {
 public:
  explicit DiagnosticSink(std::size_t max_stored = 1000)
      : max_stored_(max_stored) {}

  void report(Diagnostic d);

  /// Convenience: report with an anchor in `file_`/line.
  void error(DiagCode code, int line, std::string message);
  void warning(DiagCode code, int line, std::string message);
  void note(DiagCode code, int line, std::string message);

  /// File name stamped on subsequently reported diagnostics.
  void set_file(std::string file) { file_ = std::move(file); }
  const std::string& file() const { return file_; }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t error_count() const { return errors_; }
  std::size_t warning_count() const { return warnings_; }
  bool has_errors() const { return errors_ > 0; }
  bool empty() const { return diags_.empty() && errors_ == 0; }

  /// True if some stored diagnostic carries `code`.
  bool has(DiagCode code) const;
  /// Number of stored diagnostics carrying `code`.
  std::size_t count(DiagCode code) const;

  /// "3 errors, 1 warning" plus an overflow note when the cap was hit.
  std::string summary() const;

  /// Strict boundary: throws DiagnosticError carrying every stored
  /// diagnostic when the sink holds errors; otherwise does nothing.
  /// `context` prefixes the exception message (e.g. the file name).
  void throw_if_errors(const std::string& context) const;

  /// Appends every stored diagnostic of `other` (and its counters) to this
  /// sink, in `other`'s order. Findings `other` dropped at its cap stay
  /// counted-but-dropped here too.
  void absorb(const DiagnosticSink& other);

 private:
  friend class LaneDiagnostics;  // merge_into folds per-lane drop counts in

  void bump(Severity s);

  std::string file_;
  std::vector<Diagnostic> diags_;
  std::size_t max_stored_;
  std::size_t dropped_ = 0;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

/// The single exception a strict parse raises after the whole input was
/// consumed: a ParseError whose what() renders every collected diagnostic
/// and which carries the structured list for programmatic consumers.
class DiagnosticError : public ParseError {
 public:
  DiagnosticError(const std::string& context, std::vector<Diagnostic> diags);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

 private:
  static std::string render_all(const std::string& context,
                                const std::vector<Diagnostic>& diags);

  std::vector<Diagnostic> diags_;
};

/// Diagnostic collection for parallel regions. DiagnosticSink itself is
/// single-threaded by contract; code that reports findings from inside a
/// (deadline-aware) parallel_for instead gives every lane its own slot
/// here — no sharing, no locks — and tags each finding with its loop
/// index. merge_into() then splices all lanes into one ordinary sink
/// ordered by that index, so the merged output is bit-identical for any
/// thread count (the repo-wide determinism contract, docs/PARALLELISM.md).
///
/// Per-lane storage is capped like DiagnosticSink's: findings past the cap
/// are counted (error/warning totals stay exact) but not stored, and the
/// merged sink reports the overflow in its summary().
class LaneDiagnostics {
 public:
  /// `lanes` should be parallel_workers() at region entry; `max_stored`
  /// caps stored findings per lane.
  explicit LaneDiagnostics(int lanes, std::size_t max_stored = 1000);

  int lanes() const { return static_cast<int>(lanes_.size()); }

  /// Reports one finding from `lane` at loop index `index`. Safe to call
  /// concurrently from distinct lanes; a single lane is sequential (the
  /// parallel_for contract).
  void report(int lane, std::uint64_t index, Diagnostic d);

  /// Convenience for the common error case.
  void error(int lane, std::uint64_t index, DiagCode code,
             std::string message);

  /// Errors across all lanes, including capped-out findings.
  std::size_t error_count() const;

  /// Appends everything into `out`, stably ordered by loop index. Call
  /// after the parallel region has joined (not thread-safe).
  void merge_into(DiagnosticSink& out) const;

 private:
  struct Entry {
    std::uint64_t index;
    Diagnostic diag;
  };
  struct Lane {
    std::vector<Entry> entries;
    std::size_t dropped = 0;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    // Keep lanes on separate cache lines: adjacent lanes append
    // concurrently.
    char pad[64];
  };
  std::vector<Lane> lanes_;
  std::size_t max_stored_;
};

}  // namespace serelin
