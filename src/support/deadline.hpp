// Deadline and cancellation: cooperative time-bounding for the solver and
// kernel loops, so one oversized or hostile input cannot wedge a worker.
//
// The contract (docs/ROBUSTNESS.md):
//
//  * A Deadline is a cheap value type combining an optional wall-clock
//    expiry with an optional CancelToken. Default-constructed deadlines
//    never expire, so existing call sites pay nothing.
//  * Solvers (MinObsWinSolver, ClosureSolver, MinPeriodRetimer,
//    wd_min_period) poll the deadline at points where their current state
//    is feasible; on expiry they stop and return a *Partial* result — the
//    best feasible answer found so far plus a structured StopReason —
//    instead of throwing.
//  * Kernels whose output is all-or-nothing (WdMatrices, the
//    observability runs) throw CancelledError on expiry; the caller that
//    owns a partial-capable result catches it at its boundary.
//  * Inside parallel regions every lane polls independently
//    (parallel_for's deadline overload); the first expiry aborts the
//    region via the pool's exception channel.
//
// Polling cost: Deadline::expired() is one steady_clock read plus one
// relaxed atomic load. Tight inner loops use DeadlinePoller, which
// decimates real checks to every `stride` polls.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "support/check.hpp"

namespace serelin {

/// Why a run stopped before completing.
enum class StopReason : std::uint8_t {
  kNone = 0,   ///< ran to completion
  kDeadline,   ///< wall-clock deadline expired
  kCancelled,  ///< CancelToken fired
};

const char* stop_reason_name(StopReason r);

/// Shared cancellation flag. Copies observe the same flag; cancel() is
/// safe from any thread (e.g. a signal handler thread or an RPC layer).
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const noexcept { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

  /// The raw flag, for async-signal-safe cancellation from a signal
  /// handler (support/signals.cpp) — a handler cannot call a member
  /// function on a shared_ptr-backed object but may store into a
  /// pre-published atomic. The token must outlive every use of it.
  std::atomic<bool>* flag() const noexcept { return flag_.get(); }

 private:
  friend class Deadline;
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Thrown by all-or-nothing kernels when their deadline expires; carries
/// the structured reason so tool boundaries can map it to an exit code.
class CancelledError : public Error {
 public:
  CancelledError(StopReason reason, const std::string& what)
      : Error(what), reason_(reason) {}

  StopReason reason() const { return reason_; }

 private:
  StopReason reason_;
};

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires (and is not cancellable): the default everywhere.
  Deadline() = default;

  static Deadline never() { return {}; }

  /// Expires `seconds` from now. Non-positive values are already expired.
  static Deadline after(double seconds);

  /// Expires when `token` is cancelled (no time limit).
  static Deadline with_token(CancelToken token);

  /// Attaches a cancellation token to this deadline (kept alongside any
  /// time limit; whichever fires first stops the run).
  Deadline& attach(CancelToken token);

  /// True when neither a time limit nor a token is set.
  bool unlimited() const { return !timed_ && !flag_; }

  /// kNone while running; the reason once expired/cancelled.
  StopReason status() const;

  bool expired() const { return status() != StopReason::kNone; }

  /// Seconds left; +infinity when no time limit is set, 0 when expired.
  double remaining_seconds() const;

  /// A sub-deadline: expires `seconds` from now but never later than this
  /// deadline, and shares its cancellation token. Non-finite `seconds`
  /// means "no extra limit" (the slice is just this deadline). Used to
  /// give pipeline stages their own slice of an overall budget.
  Deadline slice(double seconds) const;

  /// Throws CancelledError("<where>: ...") when expired.
  void check(const char* where) const;

 private:
  bool timed_ = false;
  Clock::time_point at_{};
  std::shared_ptr<std::atomic<bool>> flag_;  ///< null = no token
};

/// Strided poller for tight loops: real deadline checks happen once every
/// `stride` calls, so per-iteration cost is one branch and an increment.
class DeadlinePoller {
 public:
  explicit DeadlinePoller(const Deadline& deadline,
                          std::uint32_t stride = 256)
      : deadline_(&deadline),
        stride_(deadline.unlimited() ? 0 : (stride == 0 ? 1 : stride)) {}

  /// True once the deadline has expired (checked every `stride` calls;
  /// stays true afterwards).
  bool expired() {
    if (stride_ == 0 || (!hit_ && ++count_ % stride_ != 0)) return hit_;
    hit_ = hit_ || deadline_->expired();
    return hit_;
  }

  /// Throws CancelledError on (strided) expiry.
  void check(const char* where) {
    if (expired()) deadline_->check(where);
  }

 private:
  const Deadline* deadline_;
  std::uint32_t stride_;
  std::uint32_t count_ = 0;
  bool hit_ = false;
};

}  // namespace serelin
