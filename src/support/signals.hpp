// Graceful SIGINT/SIGTERM handling for the tools (docs/ROBUSTNESS.md §11).
//
// Contract: the *first* signal trips a CancelToken — every solver then
// stops at its next feasible checkpoint, the pipeline finalizes its
// journal and forces a last checkpoint, and the tool exits with the
// registered "interrupted" code (78) carrying a legal best-so-far result.
// A *second* signal means the operator wants out now: the handler restores
// the default disposition and re-raises, so the process dies with the
// conventional signal exit status.
//
// The handler body is async-signal-safe: one relaxed store into the
// token's atomic flag plus one counter increment; no allocation, locks or
// I/O. Only one SignalGuard may be live at a time (tools install exactly
// one at main()).
#pragma once

#include "support/deadline.hpp"

namespace serelin {

class SignalGuard {
 public:
  /// Installs SIGINT/SIGTERM handlers wired to `token`. The guard keeps
  /// the token alive for the handler's benefit.
  explicit SignalGuard(CancelToken token);

  /// Restores the previous handlers.
  ~SignalGuard();

  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

  /// True once at least one SIGINT/SIGTERM arrived.
  bool interrupted() const;

  /// Exit code registered for "interrupted, clean partial result written"
  /// (docs/ROBUSTNESS.md §5).
  static constexpr int kExitInterrupted = 78;

 private:
  CancelToken token_;
};

}  // namespace serelin
