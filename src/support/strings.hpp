// Small string helpers shared by the .bench parser and report writers,
// plus checked numeric parsing for command-line front ends.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace serelin {

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> split(std::string_view s,
                                    std::string_view delims);

/// ASCII upper-casing (gate-type keywords in .bench are case-insensitive).
std::string to_upper(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

// Checked numeric parsing (CLI argument hardening). Unlike std::atoi /
// std::atof these reject empty strings, trailing junk, and out-of-range
// values instead of silently returning 0 — `--threads banana` must be a
// usage error, not zero threads. Leading/trailing whitespace is rejected.

/// Whole-string signed integer in [lo, hi]; nullopt on any defect.
std::optional<std::int64_t> parse_int(std::string_view s,
                                      std::int64_t lo = INT64_MIN,
                                      std::int64_t hi = INT64_MAX);

/// Whole-string unsigned integer; nullopt on any defect.
std::optional<std::uint64_t> parse_uint(std::string_view s);

/// Whole-string finite double; nullopt on any defect.
std::optional<double> parse_double(std::string_view s);

}  // namespace serelin
