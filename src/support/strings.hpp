// Small string helpers shared by the .bench parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace serelin {

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> split(std::string_view s,
                                    std::string_view delims);

/// ASCII upper-casing (gate-type keywords in .bench are case-insensitive).
std::string to_upper(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

}  // namespace serelin
