#include "support/check.hpp"

#include <sstream>

namespace serelin::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}
}  // namespace

void throw_assertion(const char* expr, const char* file, int line,
                     const std::string& msg) {
  throw AssertionError(format("assertion", expr, file, line, msg));
}

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw PreconditionError(format("precondition", expr, file, line, msg));
}

}  // namespace serelin::detail
