// Versioned solver checkpoints and the CheckpointSink (docs/ROBUSTNESS.md
// §11).
//
// A checkpoint file is a single atomic artifact (written through
// atomic_write_file, so it is always either absent, the previous complete
// snapshot, or the new complete snapshot):
//
//   "SRLCKPT\n"  8-byte magic
//   u32          format version (kCheckpointVersion)
//   str          kind ("pipeline", "closure", ...)
//   u64          fingerprint — hash of the inputs the snapshot is only
//                valid for (circuit + solver options); a resume against a
//                different input is rejected, never silently wrong
//   u32          section count, then per section: str name, str blob
//   u32          CRC-32 of every preceding byte
//
// Sections are opaque named blobs; the owning layer (core solver, flow
// pipeline) encodes its state with BinWriter and decodes with BinReader,
// keeping support/ free of solver types. Integers are packed explicitly
// little-endian so a checkpoint is bit-stable across platforms — the
// resumed-equals-fresh contract is checked bitwise.
//
// CheckpointSink is threaded through solver options exactly like Deadline:
// a cheap value type, default-disabled, copies sharing one rate-limit
// counter. Solvers offer() a snapshot at every safe point (a committed,
// feasible state); the sink persists every `every`-th offer plus the
// first, deterministically — never on a wall-clock cadence, so a fixed
// seed reproduces the exact same sequence of on-disk snapshots.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace serelin {

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Little-endian binary packer for checkpoint sections.
class BinWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// u32 length followed by the raw bytes.
  void str(std::string_view s);

  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Little-endian binary unpacker; throws serelin::ParseError on underrun
/// (a truncated or mismatched section decodes loudly, never garbage).
class BinReader {
 public:
  explicit BinReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str();

  bool done() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const;

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// One decoded (or to-be-encoded) checkpoint: header plus named sections.
struct CheckpointImage {
  std::uint32_t version = kCheckpointVersion;
  std::string kind;
  std::uint64_t fingerprint = 0;
  std::vector<std::pair<std::string, std::string>> sections;

  /// First section named `name`, or nullptr.
  const std::string* find(std::string_view name) const;
};

/// Serializes an image to the on-disk format (magic..CRC).
std::string encode_checkpoint(const CheckpointImage& image);

/// Parses and validates (magic, version, CRC). Throws serelin::ParseError
/// on any damage — a checkpoint is either fully intact or rejected.
CheckpointImage decode_checkpoint(std::string_view bytes);

/// Atomically writes `image` to `path`. Throws serelin::Error on failure.
void save_checkpoint(const std::string& path, const CheckpointImage& image);

/// Loads `path` into `image`. Returns false when the file is missing;
/// throws serelin::ParseError when it exists but is damaged.
bool load_checkpoint(const std::string& path, CheckpointImage& image);

/// Destination for solver progress snapshots; see the header comment.
class CheckpointSink {
 public:
  /// Disabled sink: offer()/force() are no-ops.
  CheckpointSink() = default;

  CheckpointSink(std::string path, std::string kind, std::uint64_t fingerprint,
                 int every = 16);

  bool enabled() const { return impl_ != nullptr; }

  /// False once a snapshot write has failed (disk full...); snapshots are
  /// then swallowed — durability degrades, the solve never aborts.
  bool healthy() const;

  const std::string& path() const;

  /// A copy that prepends one pre-encoded section to every snapshot it
  /// writes — how the pipeline stamps stage context onto the snapshots
  /// the solver underneath it offers. Shares the rate-limit counter.
  CheckpointSink with_section(std::string name, std::string blob) const;

  /// Rate-limited persist: `fill` populates the image's sections; it runs
  /// only when this offer is one the sink actually writes.
  void offer(const std::function<void(CheckpointImage&)>& fill) const;

  /// Unconditional persist (stage boundaries, cancellation exits).
  void force(const std::function<void(CheckpointImage&)>& fill) const;

 private:
  struct Impl {
    std::string path;
    std::string kind;
    std::uint64_t fingerprint = 0;
    int every = 16;
    std::atomic<std::int64_t> offers{0};
    std::atomic<bool> healthy{true};
  };

  void write(const std::function<void(CheckpointImage&)>& fill) const;

  std::shared_ptr<Impl> impl_;
  std::vector<std::pair<std::string, std::string>> context_;
};

}  // namespace serelin
