#include "support/atomic_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "support/check.hpp"

namespace serelin {

namespace fs = std::filesystem;

std::uint32_t crc32(std::string_view data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xffffffffu;
  for (const char ch : data)
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

namespace {

std::atomic<std::int64_t> g_crash_countdown{0};  // <= 0: disarmed
std::atomic<std::int64_t> g_crash_points{0};

std::string temp_path(const std::string& path) { return path + ".tmp"; }

/// write(2) the whole buffer, retrying on short writes / EINTR.
bool write_all(int fd, const char* data, std::size_t size) noexcept {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable. Failures are ignored: some filesystems refuse
/// directory fsync, and the data-file fsync already happened.
void sync_parent_dir(const std::string& path) noexcept {
  const fs::path dir = fs::path(path).parent_path();
  const std::string d = dir.empty() ? std::string(".") : dir.string();
  const int fd = ::open(d.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void crash_arm(std::int64_t countdown) {
  g_crash_countdown.store(countdown > 0 ? countdown : 0,
                          std::memory_order_relaxed);
  g_crash_points.store(0, std::memory_order_relaxed);
}

std::int64_t crash_points_passed() {
  return g_crash_points.load(std::memory_order_relaxed);
}

namespace detail {

void crash_point(const char* /*site*/) {
  g_crash_points.fetch_add(1, std::memory_order_relaxed);
  if (g_crash_countdown.load(std::memory_order_relaxed) <= 0) return;
  if (g_crash_countdown.fetch_sub(1, std::memory_order_relaxed) == 1) {
    // Simulated power loss: die without flushing, unwinding or atexit.
    ::raise(SIGKILL);
  }
}

}  // namespace detail

bool try_atomic_write_file(const std::string& path, std::string_view content,
                           std::string* error) noexcept {
  const auto fail = [&](const std::string& what) {
    if (error) *error = what + ": " + std::strerror(errno);
    return false;
  };
  const std::string tmp = temp_path(path);
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return fail("cannot create '" + tmp + "'");
  detail::crash_point("atomic.created");
  // Two halves with a crash point between them: an armed harness can tear
  // the temp file mid-content (the rename target must stay unharmed).
  const std::size_t half = content.size() / 2;
  bool ok = write_all(fd, content.data(), half);
  detail::crash_point("atomic.mid_write");
  ok = ok && write_all(fd, content.data() + half, content.size() - half);
  if (!ok) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return fail("failed writing '" + tmp + "'");
  }
  detail::crash_point("atomic.before_sync");
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return fail("fsync failed on '" + tmp + "'");
  }
  ::close(fd);
  detail::crash_point("atomic.before_rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return fail("cannot rename '" + tmp + "' over '" + path + "'");
  }
  detail::crash_point("atomic.after_rename");
  sync_parent_dir(path);
  return true;
}

void atomic_write_file(const std::string& path, std::string_view content) {
  std::string error;
  if (!try_atomic_write_file(path, content, &error))
    throw Error("atomic_write_file: " + error);
}

void remove_stale_temp(const std::string& path) {
  ::unlink(temp_path(path).c_str());  // ENOENT is the common, fine case
}

std::string frame_journal_record(std::string_view payload) {
  char head[20];
  std::snprintf(head, sizeof(head), "%08zx %08x ", payload.size(),
                crc32(payload));
  std::string frame(head);
  frame.append(payload);
  frame.push_back('\n');
  return frame;
}

JournalWriter::JournalWriter(const std::string& path, Mode mode)
    : path_(path) {
  const int flags = O_WRONLY | O_CREAT | O_CLOEXEC |
                    (mode == Mode::kAppend ? O_APPEND : O_TRUNC);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0)
    throw Error("cannot open journal for writing: " + path + ": " +
                std::strerror(errno));
}

JournalWriter::~JournalWriter() { close_fd(); }

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      healthy_(other.healthy_) {}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    close_fd();
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    healthy_ = other.healthy_;
  }
  return *this;
}

void JournalWriter::close_fd() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void JournalWriter::append(std::string_view payload) {
  if (fd_ < 0 || !healthy_) return;
  SERELIN_ASSERT(payload.find('\n') == std::string_view::npos,
                 "journal payloads are single-line");
  const std::string frame = frame_journal_record(payload);
  detail::crash_point("journal.before_append");
  // Two halves with a crash point between them: the only way a genuinely
  // torn record (the thing recover_journal exists for) can be produced
  // under test. O_APPEND keeps the halves contiguous (single writer).
  const std::size_t half = frame.size() / 2;
  bool ok = write_all(fd_, frame.data(), half);
  detail::crash_point("journal.mid_append");
  ok = ok && write_all(fd_, frame.data() + half, frame.size() - half);
  detail::crash_point("journal.before_sync");
  ok = ok && ::fsync(fd_) == 0;
  detail::crash_point("journal.after_sync");
  if (!ok) healthy_ = false;  // disk full etc.: degrade, never abort a run
}

namespace {

/// Parses one frame starting at `pos`. Returns the payload and advances
/// `pos` past the trailing newline, or reports why the frame is damaged.
bool parse_frame(const std::string& bytes, std::size_t& pos,
                 std::string& payload, std::string& why) {
  static constexpr std::size_t kHeader = 18;  // "LLLLLLLL CCCCCCCC "
  const std::size_t eol = bytes.find('\n', pos);
  if (eol == std::string::npos) {
    why = "unterminated frame (no trailing newline)";
    return false;
  }
  const std::string_view line(bytes.data() + pos, eol - pos);
  if (line.size() < kHeader || line[8] != ' ' || line[17] != ' ') {
    why = "malformed frame header";
    return false;
  }
  std::uint64_t len = 0;
  std::uint64_t crc = 0;
  for (int i = 0; i < 8; ++i) {
    const auto hex = [&why](char c, std::uint64_t& out) {
      if (c >= '0' && c <= '9') out = out * 16 + static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        out = out * 16 + static_cast<unsigned>(c - 'a' + 10);
      else {
        why = "non-hex digit in frame header";
        return false;
      }
      return true;
    };
    if (!hex(line[static_cast<std::size_t>(i)], len) ||
        !hex(line[static_cast<std::size_t>(i) + 9], crc))
      return false;
  }
  const std::string_view body = line.substr(kHeader);
  if (body.size() != len) {
    why = "frame length mismatch (header says " + std::to_string(len) +
          ", line carries " + std::to_string(body.size()) + ")";
    return false;
  }
  if (crc32(body) != crc) {
    why = "frame CRC mismatch";
    return false;
  }
  payload.assign(body);
  pos = eol + 1;
  return true;
}

}  // namespace

JournalRecovery read_journal(const std::string& path) {
  JournalRecovery out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;  // missing journal: nothing recorded yet
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    std::string payload;
    std::string why;
    if (!parse_frame(bytes, pos, payload, why)) {
      out.torn = true;
      out.detail = "record " + std::to_string(out.records.size()) +
                   " at byte " + std::to_string(pos) + ": " + why;
      break;
    }
    out.records.push_back(std::move(payload));
    out.valid_bytes = pos;
  }
  return out;
}

JournalRecovery recover_journal(const std::string& path) {
  JournalRecovery out = read_journal(path);
  remove_stale_temp(path);
  if (out.torn) {
    if (::truncate(path.c_str(), static_cast<off_t>(out.valid_bytes)) != 0)
      throw Error("cannot truncate torn journal '" + path + "' to " +
                  std::to_string(out.valid_bytes) + " bytes: " +
                  std::strerror(errno));
    const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
    sync_parent_dir(path);
  }
  return out;
}

}  // namespace serelin
