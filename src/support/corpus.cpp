#include "support/corpus.hpp"

#include <filesystem>

#include "support/atomic_io.hpp"

namespace serelin {

namespace fs = std::filesystem;

std::uint64_t content_hash(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

std::string hash_hex(std::uint64_t h) {
  static const char* kDigits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[h & 0xf];
    h >>= 4;
  }
  return s;
}

PersistResult persist_counterexample(const std::string& dir,
                                     const std::string& prefix,
                                     const std::string& ext,
                                     const std::string& text,
                                     const std::string& sidecar) {
  PersistResult out;
  std::error_code ec;
  fs::create_directories(dir, ec);
  const fs::path file =
      fs::path(dir) / (prefix + "-" + hash_hex(content_hash(text)) + ext);
  if (fs::exists(file, ec)) {
    out.path = file.string();
    out.deduplicated = true;
    return out;
  }
  // Durable replace (docs/ROBUSTNESS.md §11): a crash mid-persist must not
  // leave a torn counterexample that later replays as a different circuit.
  if (!try_atomic_write_file(file.string(), text))
    return out;  // path stays empty: persistence failed
  try_atomic_write_file(file.string() + ".repro", sidecar);
  out.path = file.string();
  return out;
}

}  // namespace serelin
