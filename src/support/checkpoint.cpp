#include "support/checkpoint.hpp"

#include <fstream>
#include <iterator>

#include "support/atomic_io.hpp"
#include "support/check.hpp"

namespace serelin {

namespace {
constexpr char kMagic[8] = {'S', 'R', 'L', 'C', 'K', 'P', 'T', '\n'};
}  // namespace

void BinWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

void BinReader::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n)
    throw ParseError("checkpoint section truncated (needed " +
                     std::to_string(n) + " bytes at offset " +
                     std::to_string(pos_) + ")");
}

std::uint8_t BinReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t BinReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_++]))
         << (8 * i);
  return v;
}

std::uint64_t BinReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_++]))
         << (8 * i);
  return v;
}

std::string BinReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(bytes_.substr(pos_, n));
  pos_ += n;
  return s;
}

const std::string* CheckpointImage::find(std::string_view name) const {
  for (const auto& [n, blob] : sections)
    if (n == name) return &blob;
  return nullptr;
}

std::string encode_checkpoint(const CheckpointImage& image) {
  std::string out(kMagic, sizeof(kMagic));
  BinWriter body;
  body.u32(image.version);
  body.str(image.kind);
  body.u64(image.fingerprint);
  body.u32(static_cast<std::uint32_t>(image.sections.size()));
  for (const auto& [name, blob] : image.sections) {
    body.str(name);
    body.str(blob);
  }
  out += body.bytes();
  BinWriter tail;
  tail.u32(crc32(out));
  out += tail.bytes();
  return out;
}

CheckpointImage decode_checkpoint(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) + 4 ||
      bytes.substr(0, sizeof(kMagic)) !=
          std::string_view(kMagic, sizeof(kMagic)))
    throw ParseError("not a serelin checkpoint (bad magic)");
  const std::string_view covered = bytes.substr(0, bytes.size() - 4);
  BinReader crc_reader(bytes.substr(bytes.size() - 4));
  if (crc32(covered) != crc_reader.u32())
    throw ParseError("checkpoint CRC mismatch (file damaged or tampered)");
  BinReader r(covered.substr(sizeof(kMagic)));
  CheckpointImage image;
  image.version = r.u32();
  if (image.version > kCheckpointVersion)
    throw ParseError("checkpoint version " + std::to_string(image.version) +
                     " is newer than this binary supports (" +
                     std::to_string(kCheckpointVersion) + ")");
  image.kind = r.str();
  image.fingerprint = r.u64();
  const std::uint32_t count = r.u32();
  image.sections.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = r.str();
    std::string blob = r.str();
    image.sections.emplace_back(std::move(name), std::move(blob));
  }
  if (!r.done())
    throw ParseError("checkpoint carries trailing bytes past its sections");
  return image;
}

void save_checkpoint(const std::string& path, const CheckpointImage& image) {
  atomic_write_file(path, encode_checkpoint(image));
}

bool load_checkpoint(const std::string& path, CheckpointImage& image) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  image = decode_checkpoint(bytes);
  return true;
}

CheckpointSink::CheckpointSink(std::string path, std::string kind,
                               std::uint64_t fingerprint, int every)
    : impl_(std::make_shared<Impl>()) {
  SERELIN_REQUIRE(!path.empty(), "a checkpoint sink needs a path");
  impl_->path = std::move(path);
  impl_->kind = std::move(kind);
  impl_->fingerprint = fingerprint;
  impl_->every = every < 1 ? 1 : every;
}

bool CheckpointSink::healthy() const {
  return !impl_ || impl_->healthy.load(std::memory_order_relaxed);
}

const std::string& CheckpointSink::path() const {
  static const std::string kEmpty;
  return impl_ ? impl_->path : kEmpty;
}

CheckpointSink CheckpointSink::with_section(std::string name,
                                            std::string blob) const {
  CheckpointSink out = *this;
  out.context_.emplace_back(std::move(name), std::move(blob));
  return out;
}

void CheckpointSink::write(
    const std::function<void(CheckpointImage&)>& fill) const {
  CheckpointImage image;
  image.kind = impl_->kind;
  image.fingerprint = impl_->fingerprint;
  image.sections = context_;
  fill(image);
  std::string error;
  if (!try_atomic_write_file(impl_->path, encode_checkpoint(image), &error))
    impl_->healthy.store(false, std::memory_order_relaxed);
}

void CheckpointSink::offer(
    const std::function<void(CheckpointImage&)>& fill) const {
  if (!impl_ || !impl_->healthy.load(std::memory_order_relaxed)) return;
  const std::int64_t n =
      impl_->offers.fetch_add(1, std::memory_order_relaxed);
  if (n % impl_->every != 0) return;  // deterministic: first, then every K-th
  write(fill);
}

void CheckpointSink::force(
    const std::function<void(CheckpointImage&)>& fill) const {
  if (!impl_ || !impl_->healthy.load(std::memory_order_relaxed)) return;
  write(fill);
}

}  // namespace serelin
