// Plain-text table formatter used by the Table-I harness and the examples.
//
// Produces aligned, pipe-separated rows similar to the paper's table so the
// reproduced results can be compared side by side with the published ones.
#pragma once

#include <string>
#include <vector>

namespace serelin {

class TextTable {
 public:
  /// Defines the column headers; all subsequent rows must have equal arity.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a data row (already formatted cells).
  void add_row(std::vector<std::string> cells);

  /// Renders the table with a header separator line.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with `digits` digits after the decimal point.
std::string fmt_fixed(double v, int digits);

/// Formats `v` as a percentage with two decimals, e.g. -32.70%.
std::string fmt_percent(double v);

/// Formats `v` in scientific notation with two decimals, e.g. 7.72E-03.
std::string fmt_sci(double v);

}  // namespace serelin
