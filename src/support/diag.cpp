#include "support/diag.hpp"

#include <algorithm>

namespace serelin {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "error";
}

const char* diag_code_name(DiagCode code) {
  switch (code) {
    case DiagCode::kIoNotFound:
      return "io-not-found";
    case DiagCode::kIoUnreadable:
      return "io-unreadable";
    case DiagCode::kIoStreamError:
      return "io-stream-error";
    case DiagCode::kBadByte:
      return "bad-byte";
    case DiagCode::kBenchSyntax:
      return "bench-syntax";
    case DiagCode::kBenchUnknownDirective:
      return "bench-unknown-directive";
    case DiagCode::kBenchUnknownGate:
      return "bench-unknown-gate";
    case DiagCode::kBenchArity:
      return "bench-arity";
    case DiagCode::kBlifSyntax:
      return "blif-syntax";
    case DiagCode::kBlifUnsupported:
      return "blif-unsupported";
    case DiagCode::kBlifCover:
      return "blif-cover";
    case DiagCode::kBlifMissingEnd:
      return "blif-missing-end";
    case DiagCode::kNetMultiplyDriven:
      return "net-multiply-driven";
    case DiagCode::kNetUndefined:
      return "net-undefined";
    case DiagCode::kNetDffMissingDriver:
      return "net-dff-missing-driver";
    case DiagCode::kNetCombCycle:
      return "net-comb-cycle";
    case DiagCode::kNetBadArity:
      return "net-bad-arity";
    case DiagCode::kLintDanglingNet:
      return "lint-dangling-net";
    case DiagCode::kLintUnreferenced:
      return "lint-unreferenced";
    case DiagCode::kLintUnusedInput:
      return "lint-unused-input";
    case DiagCode::kLintNoOutputs:
      return "lint-no-outputs";
    case DiagCode::kOracleLegality:
      return "oracle-legality";
    case DiagCode::kOraclePeriod:
      return "oracle-period";
    case DiagCode::kOracleElw:
      return "oracle-elw";
    case DiagCode::kOracleObjective:
      return "oracle-objective";
  }
  return "unknown";
}

std::string Diagnostic::render() const {
  std::string out;
  if (!file.empty()) {
    out += file;
    out += ':';
  }
  if (line > 0) {
    out += std::to_string(line);
    if (col > 0) {
      out += ':';
      out += std::to_string(col);
    }
    out += ':';
  }
  if (!out.empty()) out += ' ';
  out += severity_name(severity);
  out += '[';
  out += diag_code_name(code);
  out += "]: ";
  out += message;
  return out;
}

void DiagnosticSink::bump(Severity s) {
  if (s == Severity::kError) ++errors_;
  if (s == Severity::kWarning) ++warnings_;
}

void DiagnosticSink::report(Diagnostic d) {
  bump(d.severity);
  if (diags_.size() >= max_stored_) {
    ++dropped_;
    return;
  }
  if (d.file.empty()) d.file = file_;
  diags_.push_back(std::move(d));
}

void DiagnosticSink::error(DiagCode code, int line, std::string message) {
  report({Severity::kError, code, file_, line, 0, std::move(message)});
}

void DiagnosticSink::warning(DiagCode code, int line, std::string message) {
  report({Severity::kWarning, code, file_, line, 0, std::move(message)});
}

void DiagnosticSink::note(DiagCode code, int line, std::string message) {
  report({Severity::kNote, code, file_, line, 0, std::move(message)});
}

bool DiagnosticSink::has(DiagCode code) const { return count(code) > 0; }

std::size_t DiagnosticSink::count(DiagCode code) const {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [code](const Diagnostic& d) { return d.code == code; }));
}

std::string DiagnosticSink::summary() const {
  std::string out = std::to_string(errors_) +
                    (errors_ == 1 ? " error, " : " errors, ") +
                    std::to_string(warnings_) +
                    (warnings_ == 1 ? " warning" : " warnings");
  if (dropped_ > 0)
    out += " (" + std::to_string(dropped_) + " further findings not stored)";
  return out;
}

void DiagnosticSink::throw_if_errors(const std::string& context) const {
  if (!has_errors()) return;
  throw DiagnosticError(context, diags_);
}

void DiagnosticSink::absorb(const DiagnosticSink& other) {
  for (const Diagnostic& d : other.diags_) {
    bump(d.severity);
    if (diags_.size() >= max_stored_)
      ++dropped_;
    else
      diags_.push_back(d);
  }
  // Findings the source itself dropped: counters were bumped there, so
  // re-bump here without storage.
  dropped_ += other.dropped_;
  std::size_t stored_errors = 0, stored_warnings = 0;
  for (const Diagnostic& d : other.diags_) {
    if (d.severity == Severity::kError) ++stored_errors;
    if (d.severity == Severity::kWarning) ++stored_warnings;
  }
  errors_ += other.errors_ - stored_errors;
  warnings_ += other.warnings_ - stored_warnings;
}

LaneDiagnostics::LaneDiagnostics(int lanes, std::size_t max_stored)
    : lanes_(static_cast<std::size_t>(lanes < 1 ? 1 : lanes)),
      max_stored_(max_stored) {}

void LaneDiagnostics::report(int lane, std::uint64_t index, Diagnostic d) {
  Lane& slot = lanes_[static_cast<std::size_t>(lane)];
  if (d.severity == Severity::kError) ++slot.errors;
  if (d.severity == Severity::kWarning) ++slot.warnings;
  if (slot.entries.size() >= max_stored_) {
    ++slot.dropped;
    return;
  }
  slot.entries.push_back(Entry{index, std::move(d)});
}

void LaneDiagnostics::error(int lane, std::uint64_t index, DiagCode code,
                            std::string message) {
  report(lane, index,
         Diagnostic{Severity::kError, code, {}, 0, 0, std::move(message)});
}

std::size_t LaneDiagnostics::error_count() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.errors;
  return n;
}

void LaneDiagnostics::merge_into(DiagnosticSink& out) const {
  std::vector<const Entry*> all;
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.entries.size();
  all.reserve(total);
  for (const Lane& lane : lanes_)
    for (const Entry& e : lane.entries) all.push_back(&e);
  // Stable on the loop index: ties (several findings at one index) keep
  // lane order, which static chunking makes deterministic per index.
  std::stable_sort(all.begin(), all.end(),
                   [](const Entry* a, const Entry* b) {
                     return a->index < b->index;
                   });
  for (const Entry* e : all) out.report(e->diag);
  for (const Lane& lane : lanes_) {
    out.dropped_ += lane.dropped;
    // Capped-out findings bumped only the lane counters; carry them over.
    std::size_t stored_errors = 0, stored_warnings = 0;
    for (const Entry& e : lane.entries) {
      if (e.diag.severity == Severity::kError) ++stored_errors;
      if (e.diag.severity == Severity::kWarning) ++stored_warnings;
    }
    out.errors_ += lane.errors - stored_errors;
    out.warnings_ += lane.warnings - stored_warnings;
  }
}

std::string DiagnosticError::render_all(const std::string& context,
                                        const std::vector<Diagnostic>& diags) {
  // Render at most a screenful; the structured list stays complete.
  constexpr std::size_t kMaxRendered = 20;
  std::size_t errors = 0;
  for (const Diagnostic& d : diags)
    if (d.severity == Severity::kError) ++errors;
  std::string out = context.empty() ? std::string() : context + ": ";
  out += std::to_string(errors) + (errors == 1 ? " error" : " errors");
  const std::size_t n = std::min(diags.size(), kMaxRendered);
  for (std::size_t i = 0; i < n; ++i) {
    out += '\n';
    out += "  ";
    out += diags[i].render();
  }
  if (diags.size() > n)
    out += "\n  ... and " + std::to_string(diags.size() - n) + " more";
  return out;
}

DiagnosticError::DiagnosticError(const std::string& context,
                                 std::vector<Diagnostic> diags)
    : ParseError(render_all(context, diags)), diags_(std::move(diags)) {}

}  // namespace serelin
