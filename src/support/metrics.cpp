#include "support/metrics.hpp"

#include <vector>

#include "support/annotations.hpp"
#include "support/atomic_io.hpp"
#include "support/check.hpp"
#include "support/sync.hpp"

namespace serelin {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kLpRelaxations: return "lp-relaxations";
    case Counter::kFeasPasses: return "feas-passes";
    case Counter::kTimingPasses: return "timing-passes";
    case Counter::kSolverIterations: return "solver-iterations";
    case Counter::kSolverCommits: return "solver-commits";
    case Counter::kForestConstraints: return "forest-constraints";
    case Counter::kForestBreaks: return "forest-breaks";
    case Counter::kForestCuts: return "forest-cuts";
    case Counter::kBundleGrowSteps: return "bundle-grow-steps";
    case Counter::kWdSources: return "wd-sources";
    case Counter::kWdHeapPops: return "wd-heap-pops";
    case Counter::kWdLazyQueries: return "wd-lazy-queries";
    case Counter::kWdRowsPruned: return "wd-rows-pruned";
    case Counter::kIncrNodesTouched: return "incr-nodes-touched";
    case Counter::kElwIntervalOps: return "elw-interval-ops";
    case Counter::kSimPatternWords: return "sim-pattern-words";
    case Counter::kObsFlips: return "obs-flips";
    case Counter::kSerTerms: return "ser-terms";
    case Counter::kOracleChecks: return "oracle-checks";
    case Counter::kDeadlineSlices: return "deadline-slices";
    case Counter::kJournalWrites: return "journal-writes";
    case Counter::kGuidedChunks: return "guided-chunks";
    case Counter::kServeJobs: return "serve-jobs";
    case Counter::kServeCacheHits: return "serve-cache-hits";
    case Counter::kServeCacheMisses: return "serve-cache-misses";
    case Counter::kCount: break;
  }
  return "unknown";
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::string out = "{";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (i) out += ", ";
    out += '"';
    out += counter_name(static_cast<Counter>(i));
    out += "\": ";
    out += std::to_string(snapshot.values[i]);
  }
  out += '}';
  return out;
}

void write_metrics_json(const MetricsSnapshot& snapshot,
                        const std::string& path) {
  // Atomic replace: a crash mid-write leaves the previous metrics file (or
  // nothing) rather than a truncated JSON document.
  atomic_write_file(path, metrics_json(snapshot) + '\n');
}

#if SERELIN_TRACE_ENABLED

namespace {

/// One per-thread counter block. Blocks outlive their threads: the
/// registry owns them (a worker that exits leaves its totals behind, so
/// snapshots never lose counts).
struct CounterBlock {
  std::int64_t values[kCounterCount] = {};
};

struct Registry {
  Mutex mutex;
  /// Registration order; never shrinks. The *vector* is guarded; each
  /// block has a single writer (its thread) and is only read/zeroed by
  /// snapshot/reset outside parallel regions (header contract).
  std::vector<CounterBlock*> blocks SERELIN_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

CounterBlock* register_block() {
  auto* block = new CounterBlock();
  Registry& r = registry();
  const MutexLock lock(r.mutex);
  r.blocks.push_back(block);
  return block;
}

}  // namespace

namespace detail {

std::int64_t* metric_lane() {
  thread_local CounterBlock* block = register_block();
  return block->values;
}

}  // namespace detail

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot out;
  Registry& r = registry();
  const MutexLock lock(r.mutex);
  for (const CounterBlock* block : r.blocks)
    for (std::size_t i = 0; i < kCounterCount; ++i)
      out.values[i] += block->values[i];
  return out;
}

void metrics_reset() {
  Registry& r = registry();
  const MutexLock lock(r.mutex);
  for (CounterBlock* block : r.blocks)
    for (std::size_t i = 0; i < kCounterCount; ++i) block->values[i] = 0;
}

#endif  // SERELIN_TRACE_ENABLED

}  // namespace serelin
