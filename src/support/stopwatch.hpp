// Wall-clock stopwatch used by the experiment harnesses to report the
// per-algorithm runtimes that Table I of the paper lists.
#pragma once

#include <chrono>

namespace serelin {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace serelin
